//! The versioned message envelope and its pure, sans-io codec.
//!
//! Every datagram of the `ltnc-net` protocol starts with a fixed 19-byte
//! envelope header, followed by a kind-specific body:
//!
//! ```text
//! +--------+-----+------+--------+---------------+----------+-----------+
//! | magic  | ver | kind | scheme | session (u64) | gen(u32) | body …    |
//! | "LTNC" | 1 B | 1 B  | 1 B    | 8 B LE        | 4 B LE   |           |
//! +--------+-----+------+--------+---------------+----------+-----------+
//! ```
//!
//! The bodies implement the paper's binary feedback channel as a two-phase
//! transfer so that an aborted transfer never carries payload bytes:
//!
//! * `DATA-HEADER` — `transfer id (u64 LE)` + a [`TraceContext`]
//!   (`origin-send timestamp (u64 LE µs)` + `hop count (u16 LE)`) + the
//!   *header prefix* of a [`ltnc_gf2::wire`] frame (`k`, `m`, code-vector
//!   bitmap, **no payload**). The receiver runs its innovation /
//!   redundancy check on this alone.
//! * `FEEDBACK-ACCEPT` / `FEEDBACK-ABORT` — `transfer id (u64 LE)`; the
//!   receiver's verdict on a pending header.
//! * `DATA-PAYLOAD` — `transfer id (u64 LE)` + a [`TraceContext`] + a
//!   *complete* `gf2::wire` frame. Self-contained on purpose: a receiver
//!   that lost its pending state (restart, reordering) can still use the
//!   packet.
//!
//! The trace context is the causal lineage of the coded information: a
//! source stamps hop 0 and its send time; a relay recoding generation
//! data stamps the **earliest** origin timestamp and the **largest hop
//! count + 1** among the packets it mixed, so a delivery's
//! `now − origin` is the true origin→delivery latency along the
//! dissemination critical path, and its hop count is the recode depth.
//! * `COMPLETE` — empty body; the envelope's generation says which
//!   generation the sender of this message has fully decoded
//!   ([`GENERATION_OBJECT`] means the whole object).
//!
//! Three further kinds carry the `ltnc-serve` request/serve handshake on
//! stream transports (the data plane is the same three-way transfer):
//!
//! * `REQUEST` — empty body; the envelope's `session` field names the
//!   object id the client wants, `scheme` the coding scheme it expects.
//! * `MANIFEST` — `object len (u64 LE)` + `k (u32 LE)` + `m (u32 LE)`:
//!   the server's description of the object about to be served, enough
//!   for the client to size its decode state.
//! * `REJECT` — empty body; the server will not serve the requested
//!   object/scheme.
//!
//! The codec is pure (`&[u8]` → values, values → `Vec<u8>`): no sockets, no
//! I/O, so it can be driven by UDP today and by a stream transport later.
//! [`decode_header`] needs only [`ENVELOPE_HEADER_BYTES`] bytes, mirroring
//! `gf2::wire::decode_header`'s header-first contract, and
//! [`required_len`] sizes a frame incrementally for stream reassembly.
//! Truncated or hostile input returns [`NetError`], never panics, and
//! advertised dimensions are capped ([`MAX_CODE_LENGTH`],
//! [`MAX_PAYLOAD_SIZE`]) so a corrupt header cannot drive allocation.

use ltnc_gf2::wire as gf2_wire;
use ltnc_gf2::{CodeVector, EncodedPacket};
use ltnc_scheme::SchemeKind;

use crate::NetError;

/// The four ASCII bytes every `ltnc-net` datagram starts with.
pub const MAGIC: [u8; 4] = *b"LTNC";

/// Current protocol version. Version 2 added the [`TraceContext`] to the
/// `DATA-HEADER` and `DATA-PAYLOAD` bodies; version-1 frames are
/// rejected ([`NetError::BadVersion`]), not interpreted.
pub const PROTOCOL_VERSION: u8 = 2;

/// Size of the fixed envelope header.
pub const ENVELOPE_HEADER_BYTES: usize = 4 + 1 + 1 + 1 + 8 + 4;

/// Sentinel generation id meaning "the entire object" in `COMPLETE`.
pub const GENERATION_OBJECT: u32 = u32::MAX;

/// Decoder safety cap on the advertised code length `k`.
pub const MAX_CODE_LENGTH: usize = 1 << 20;

/// Decoder safety cap on the advertised payload size `m`.
pub const MAX_PAYLOAD_SIZE: usize = 1 << 24;

const TRANSFER_ID_BYTES: usize = 8;

/// Bytes of a [`TraceContext`] on the wire: origin timestamp + hop count.
pub const TRACE_CONTEXT_BYTES: usize = 8 + 2;

/// Bytes of a `MANIFEST` body: object length + `k` + `m`.
const MANIFEST_BODY_BYTES: usize = 8 + 4 + 4;

/// Causal lineage carried on every `DATA-HEADER` and `DATA-PAYLOAD`:
/// when the oldest information mixed into this packet left its origin,
/// and how many recode steps it has been through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Microseconds since the Unix epoch at which the origin first sent
    /// the (oldest) information mixed into this packet.
    pub origin_micros: u64,
    /// Recode depth: 0 from a source, `max(inputs) + 1` from a relay.
    pub hop: u16,
}

impl TraceContext {
    /// The current wall clock in the wire's unit (microseconds since the
    /// Unix epoch, saturating).
    #[must_use]
    pub fn now_micros() -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
            .unwrap_or(0)
    }

    /// A source-fresh context: hop 0, stamped now.
    #[must_use]
    pub fn origin_now() -> TraceContext {
        TraceContext { origin_micros: TraceContext::now_micros(), hop: 0 }
    }

    /// Folds another packet's lineage into this one the way a recoding
    /// relay must: keep the earliest origin, the deepest hop.
    #[must_use]
    pub fn absorb(self, other: TraceContext) -> TraceContext {
        TraceContext {
            origin_micros: self.origin_micros.min(other.origin_micros),
            hop: self.hop.max(other.hop),
        }
    }

    /// The context a relay stamps on a packet recoded from inputs with
    /// this (already absorbed) lineage: one hop deeper, same origin.
    #[must_use]
    pub fn next_hop(self) -> TraceContext {
        TraceContext { origin_micros: self.origin_micros, hop: self.hop.saturating_add(1) }
    }

    /// Origin→now latency in microseconds (0 for clock skew into the
    /// future, rather than a bogus huge value).
    #[must_use]
    pub fn latency_micros(&self) -> u64 {
        TraceContext::now_micros().saturating_sub(self.origin_micros)
    }

    /// Number of overlay links the information crossed to reach whoever
    /// holds this packet: the recode depth plus the final delivery link.
    #[must_use]
    pub fn links(&self) -> usize {
        usize::from(self.hop) + 1
    }
}

fn encode_trace(out: &mut Vec<u8>, trace: &TraceContext) {
    out.extend_from_slice(&trace.origin_micros.to_le_bytes());
    out.extend_from_slice(&trace.hop.to_le_bytes());
}

fn decode_trace(body: &[u8]) -> TraceContext {
    debug_assert!(body.len() >= TRACE_CONTEXT_BYTES);
    TraceContext {
        origin_micros: u64::from_le_bytes(body[0..8].try_into().expect("8 bytes")),
        hop: u16::from_le_bytes(body[8..10].try_into().expect("2 bytes")),
    }
}

/// Message kind discriminants as they appear on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MessageKind {
    /// Header-only offer of an encoded packet (phase 1 of a transfer).
    DataHeader = 0,
    /// Full packet following an accept (phase 2 of a transfer).
    DataPayload = 1,
    /// Receiver verdict: transfer aborted, do not send the payload.
    FeedbackAbort = 2,
    /// Receiver verdict: payload wanted.
    FeedbackAccept = 3,
    /// Sender of this message has fully decoded a generation (or the whole
    /// object, see [`GENERATION_OBJECT`]).
    Complete = 4,
    /// Client request for the object named by the envelope's `session`
    /// field (serving handshake, stream transports).
    Request = 5,
    /// Server description of the object about to be served.
    Manifest = 6,
    /// Server refusal to serve the requested object/scheme.
    Reject = 7,
}

impl MessageKind {
    fn from_wire(byte: u8) -> Result<Self, NetError> {
        match byte {
            0 => Ok(MessageKind::DataHeader),
            1 => Ok(MessageKind::DataPayload),
            2 => Ok(MessageKind::FeedbackAbort),
            3 => Ok(MessageKind::FeedbackAccept),
            4 => Ok(MessageKind::Complete),
            5 => Ok(MessageKind::Request),
            6 => Ok(MessageKind::Manifest),
            7 => Ok(MessageKind::Reject),
            other => Err(NetError::BadKind(other)),
        }
    }
}

/// The fixed part of every datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvelopeHeader {
    /// Message kind.
    pub kind: MessageKind,
    /// Coding scheme of the session.
    pub scheme: SchemeKind,
    /// Session identifier (one dissemination of one object).
    pub session: u64,
    /// Generation this message concerns.
    pub generation: u32,
}

/// A fully decoded datagram body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Phase-1 offer: the code vector (and dimensions) of a packet, no
    /// payload.
    DataHeader {
        /// Sender-unique transfer identifier.
        transfer: u64,
        /// Causal lineage of the offered packet.
        trace: TraceContext,
        /// Advertised payload size `m` of the packet on offer.
        payload_size: usize,
        /// The packet's code vector (length `k`).
        vector: CodeVector,
    },
    /// Phase-2 delivery: the complete packet.
    DataPayload {
        /// Transfer identifier this payload answers.
        transfer: u64,
        /// Causal lineage of the delivered packet (stamped at offer
        /// time, so the receiver's `now − origin` covers the handshake).
        trace: TraceContext,
        /// The encoded packet.
        packet: EncodedPacket,
    },
    /// Receiver verdict on a pending transfer.
    Feedback {
        /// Transfer identifier the verdict concerns.
        transfer: u64,
        /// `true` for `FEEDBACK-ACCEPT`, `false` for `FEEDBACK-ABORT`.
        accept: bool,
    },
    /// The peer has fully decoded the envelope's generation.
    Complete,
    /// Serving handshake: the client asks for the object named by the
    /// envelope's `session` field, coded with the envelope's `scheme`.
    Request,
    /// Serving handshake: the server's object description. Dimensions are
    /// `u32` on the wire (comfortably above the decoder safety caps).
    Manifest {
        /// Exact object length in bytes (reassembly trims to this).
        object_len: u64,
        /// Code length `k` every generation uses.
        code_length: u32,
        /// Payload size `m` in bytes.
        payload_size: u32,
    },
    /// Serving handshake: the server refuses the request.
    Reject,
}

impl Message {
    /// The wire kind this message serializes as.
    #[must_use]
    pub fn kind(&self) -> MessageKind {
        match self {
            Message::DataHeader { .. } => MessageKind::DataHeader,
            Message::DataPayload { .. } => MessageKind::DataPayload,
            Message::Feedback { accept: true, .. } => MessageKind::FeedbackAccept,
            Message::Feedback { accept: false, .. } => MessageKind::FeedbackAbort,
            Message::Complete => MessageKind::Complete,
            Message::Request => MessageKind::Request,
            Message::Manifest { .. } => MessageKind::Manifest,
            Message::Reject => MessageKind::Reject,
        }
    }
}

/// One datagram: envelope header plus body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Scheme, session and generation addressing.
    pub header: EnvelopeHeader,
    /// The body.
    pub message: Message,
}

/// Serializes an envelope into a fresh buffer.
#[must_use]
pub fn encode(header: &EnvelopeHeader, message: &Message) -> Vec<u8> {
    debug_assert_eq!(header.kind, message.kind(), "header kind must match message");
    let mut out = Vec::with_capacity(ENVELOPE_HEADER_BYTES + 64);
    out.extend_from_slice(&MAGIC);
    out.push(PROTOCOL_VERSION);
    out.push(message.kind() as u8);
    out.push(header.scheme.wire_id());
    out.extend_from_slice(&header.session.to_le_bytes());
    out.extend_from_slice(&header.generation.to_le_bytes());
    match message {
        Message::DataHeader { transfer, trace, payload_size, vector } => {
            out.extend_from_slice(&transfer.to_le_bytes());
            encode_trace(&mut out, trace);
            // The body reuses the gf2 wire header layout verbatim (k, m,
            // bitmap), so receivers decode it with gf2's own header-first
            // decoder.
            out.extend_from_slice(&gf2_wire::encode_header(vector, *payload_size));
        }
        Message::DataPayload { transfer, trace, packet } => {
            out.extend_from_slice(&transfer.to_le_bytes());
            encode_trace(&mut out, trace);
            out.extend_from_slice(&gf2_wire::encode(packet));
        }
        Message::Feedback { transfer, .. } => {
            out.extend_from_slice(&transfer.to_le_bytes());
        }
        Message::Manifest { object_len, code_length, payload_size } => {
            out.extend_from_slice(&object_len.to_le_bytes());
            out.extend_from_slice(&code_length.to_le_bytes());
            out.extend_from_slice(&payload_size.to_le_bytes());
        }
        Message::Complete | Message::Request | Message::Reject => {}
    }
    out
}

/// Convenience constructor for [`Envelope`] encoding.
#[must_use]
pub fn encode_envelope(envelope: &Envelope) -> Vec<u8> {
    encode(&envelope.header, &envelope.message)
}

/// Decodes only the fixed envelope header from the first
/// [`ENVELOPE_HEADER_BYTES`] bytes — the transport-level analogue of
/// `gf2::wire::decode_header`: enough to route, filter by session and
/// count, without touching the body.
///
/// # Errors
///
/// [`NetError::Truncated`] when fewer than [`ENVELOPE_HEADER_BYTES`] bytes
/// are supplied; [`NetError::BadMagic`] / [`NetError::BadVersion`] /
/// [`NetError::BadKind`] / [`NetError::BadScheme`] on malformed fields.
pub fn decode_header(bytes: &[u8]) -> Result<EnvelopeHeader, NetError> {
    if bytes.len() < ENVELOPE_HEADER_BYTES {
        return Err(NetError::Truncated { have: bytes.len(), needed: ENVELOPE_HEADER_BYTES });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
    if magic != MAGIC {
        return Err(NetError::BadMagic(magic));
    }
    if bytes[4] != PROTOCOL_VERSION {
        return Err(NetError::BadVersion(bytes[4]));
    }
    let kind = MessageKind::from_wire(bytes[5])?;
    let scheme = SchemeKind::from_wire_id(bytes[6]).ok_or(NetError::BadScheme(bytes[6]))?;
    let session = u64::from_le_bytes(bytes[7..15].try_into().expect("8 bytes"));
    let generation = u32::from_le_bytes(bytes[15..19].try_into().expect("4 bytes"));
    Ok(EnvelopeHeader { kind, scheme, session, generation })
}

/// Incremental sizing for stream transports: given any prefix of a frame,
/// returns the total length of the complete frame, or `Err(Truncated)`
/// naming how many more prefix bytes are required before the length is
/// knowable. Pure and allocation-free.
///
/// # Errors
///
/// Same malformed-field errors as [`decode_header`], plus
/// [`NetError::FrameTooLarge`] when the advertised dimensions exceed the
/// safety caps.
pub fn required_len(prefix: &[u8]) -> Result<usize, NetError> {
    let header = decode_header(prefix)?;
    frame_len(header.kind, prefix)
}

/// Sizes a frame whose envelope header (and thus `kind`) is already
/// parsed, so callers that hold an [`EnvelopeHeader`] do not pay the
/// header parse twice.
fn frame_len(kind: MessageKind, bytes: &[u8]) -> Result<usize, NetError> {
    let body_start = ENVELOPE_HEADER_BYTES;
    match kind {
        MessageKind::Complete | MessageKind::Request | MessageKind::Reject => Ok(body_start),
        MessageKind::Manifest => Ok(body_start + MANIFEST_BODY_BYTES),
        MessageKind::FeedbackAbort | MessageKind::FeedbackAccept => {
            Ok(body_start + TRANSFER_ID_BYTES)
        }
        MessageKind::DataHeader | MessageKind::DataPayload => {
            let wire_start = body_start + TRANSFER_ID_BYTES + TRACE_CONTEXT_BYTES;
            let fixed_end = wire_start + gf2_wire::FIXED_HEADER_BYTES;
            if bytes.len() < fixed_end {
                return Err(NetError::Truncated { have: bytes.len(), needed: fixed_end });
            }
            let (k, m) = check_dims(&bytes[wire_start..])?;
            let len = if kind == MessageKind::DataHeader {
                wire_start + gf2_wire::header_size(k)
            } else {
                wire_start + gf2_wire::header_size(k) + m
            };
            Ok(len)
        }
    }
}

/// Reads and validates `k`/`m` from the start of a gf2 wire frame.
fn check_dims(wire: &[u8]) -> Result<(usize, usize), NetError> {
    debug_assert!(wire.len() >= gf2_wire::FIXED_HEADER_BYTES);
    let k = u32::from_le_bytes(wire[0..4].try_into().expect("4 bytes")) as usize;
    let m = u32::from_le_bytes(wire[4..8].try_into().expect("4 bytes")) as usize;
    if k > MAX_CODE_LENGTH || m > MAX_PAYLOAD_SIZE {
        return Err(NetError::FrameTooLarge { code_length: k, payload_size: m });
    }
    Ok((k, m))
}

/// A decoded datagram body whose `DATA-PAYLOAD` packet still borrows the
/// receive buffer (see [`decode_view`]). Every other variant is identical
/// to [`Message`]: their bodies are small and owned either way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageView<'buf> {
    /// See [`Message::DataHeader`].
    DataHeader {
        /// Sender-unique transfer identifier.
        transfer: u64,
        /// Causal lineage of the offered packet.
        trace: TraceContext,
        /// Advertised payload size `m` of the packet on offer.
        payload_size: usize,
        /// The packet's code vector (length `k`).
        vector: CodeVector,
    },
    /// See [`Message::DataPayload`]; the payload bytes stay in the buffer.
    DataPayload {
        /// Transfer identifier this payload answers.
        transfer: u64,
        /// Causal lineage of the delivered packet.
        trace: TraceContext,
        /// The packet, payload borrowed from the receive buffer.
        packet: gf2_wire::PacketView<'buf>,
    },
    /// See [`Message::Feedback`].
    Feedback {
        /// Transfer identifier the verdict concerns.
        transfer: u64,
        /// `true` for `FEEDBACK-ACCEPT`, `false` for `FEEDBACK-ABORT`.
        accept: bool,
    },
    /// See [`Message::Complete`].
    Complete,
    /// See [`Message::Request`].
    Request,
    /// See [`Message::Manifest`].
    Manifest {
        /// Exact object length in bytes (reassembly trims to this).
        object_len: u64,
        /// Code length `k` every generation uses.
        code_length: u32,
        /// Payload size `m` in bytes.
        payload_size: u32,
    },
    /// See [`Message::Reject`].
    Reject,
}

impl MessageView<'_> {
    /// Materializes an owned [`Message`], copying the `DATA-PAYLOAD` bytes
    /// out of the receive buffer (the single retain point).
    #[must_use]
    pub fn into_message(self) -> Message {
        match self {
            MessageView::DataHeader { transfer, trace, payload_size, vector } => {
                Message::DataHeader { transfer, trace, payload_size, vector }
            }
            MessageView::DataPayload { transfer, trace, packet } => {
                Message::DataPayload { transfer, trace, packet: packet.into_packet() }
            }
            MessageView::Feedback { transfer, accept } => Message::Feedback { transfer, accept },
            MessageView::Complete => Message::Complete,
            MessageView::Request => Message::Request,
            MessageView::Manifest { object_len, code_length, payload_size } => {
                Message::Manifest { object_len, code_length, payload_size }
            }
            MessageView::Reject => Message::Reject,
        }
    }
}

/// One datagram decoded borrow-first: header plus [`MessageView`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvelopeView<'buf> {
    /// Scheme, session and generation addressing.
    pub header: EnvelopeHeader,
    /// The body, `DATA-PAYLOAD` bytes still borrowed.
    pub message: MessageView<'buf>,
}

impl EnvelopeView<'_> {
    /// Materializes an owned [`Envelope`] (copies `DATA-PAYLOAD` bytes).
    #[must_use]
    pub fn into_envelope(self) -> Envelope {
        Envelope { header: self.header, message: self.message.into_message() }
    }
}

/// Decodes a complete datagram without copying the payload: the returned
/// view's `DATA-PAYLOAD` bytes borrow `bytes`. Receive paths use this to
/// defer the payload copy to the single point a packet is retained — a
/// datagram dropped as redundant, complete or mismatched never copies its
/// `m` payload bytes. The buffer must contain exactly one frame: trailing
/// bytes are an error (datagram transports preserve message boundaries, so
/// extra bytes mean corruption).
///
/// # Errors
///
/// Every malformed input maps to a [`NetError`]; this function never
/// panics on arbitrary bytes.
pub fn decode_view(bytes: &[u8]) -> Result<EnvelopeView<'_>, NetError> {
    let header = decode_header(bytes)?;
    // frame_len re-reads only the 8 dimension bytes (already cap-checked
    // there), so the envelope header is parsed exactly once per datagram.
    let total = frame_len(header.kind, bytes)?;
    if bytes.len() < total {
        return Err(NetError::Truncated { have: bytes.len(), needed: total });
    }
    if bytes.len() > total {
        return Err(NetError::TrailingBytes { extra: bytes.len() - total });
    }
    let body = &bytes[ENVELOPE_HEADER_BYTES..];
    let message = match header.kind {
        MessageKind::Complete => MessageView::Complete,
        MessageKind::Request => MessageView::Request,
        MessageKind::Reject => MessageView::Reject,
        MessageKind::Manifest => {
            let object_len = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
            let code_length = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes"));
            let payload_size = u32::from_le_bytes(body[12..16].try_into().expect("4 bytes"));
            // The same safety caps the data plane enforces: a hostile
            // manifest must not drive the client's decode-state allocation.
            if code_length as usize > MAX_CODE_LENGTH || payload_size as usize > MAX_PAYLOAD_SIZE {
                return Err(NetError::FrameTooLarge {
                    code_length: code_length as usize,
                    payload_size: payload_size as usize,
                });
            }
            MessageView::Manifest { object_len, code_length, payload_size }
        }
        MessageKind::FeedbackAbort | MessageKind::FeedbackAccept => {
            let transfer = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
            MessageView::Feedback { transfer, accept: header.kind == MessageKind::FeedbackAccept }
        }
        MessageKind::DataHeader => {
            let transfer = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
            let trace = decode_trace(&body[TRANSFER_ID_BYTES..]);
            let wire = &body[TRANSFER_ID_BYTES + TRACE_CONTEXT_BYTES..];
            let (k, m, vector) = gf2_wire::decode_header(wire)?;
            debug_assert_eq!(vector.len(), k);
            MessageView::DataHeader { transfer, trace, payload_size: m, vector }
        }
        MessageKind::DataPayload => {
            let transfer = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
            let trace = decode_trace(&body[TRANSFER_ID_BYTES..]);
            let packet = gf2_wire::decode_view(&body[TRANSFER_ID_BYTES + TRACE_CONTEXT_BYTES..])?;
            MessageView::DataPayload { transfer, trace, packet }
        }
    };
    Ok(EnvelopeView { header, message })
}

/// Decodes a complete datagram into an owned [`Envelope`]. Same contract as
/// [`decode_view`], plus one payload copy for `DATA-PAYLOAD` frames.
///
/// # Errors
///
/// Every malformed input maps to a [`NetError`]; this function never
/// panics on arbitrary bytes.
pub fn decode(bytes: &[u8]) -> Result<Envelope, NetError> {
    decode_view(bytes).map(EnvelopeView::into_envelope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltnc_gf2::Payload;

    fn header(kind: MessageKind) -> EnvelopeHeader {
        EnvelopeHeader { kind, scheme: SchemeKind::Ltnc, session: 0xfeed_beef, generation: 3 }
    }

    fn sample_packet() -> EncodedPacket {
        EncodedPacket::new(CodeVector::from_indices(21, &[0, 5, 20]), Payload::from_vec(vec![7; 9]))
    }

    fn sample_trace() -> TraceContext {
        TraceContext { origin_micros: 1_234_567, hop: 2 }
    }

    #[test]
    fn header_roundtrip_for_every_kind_and_scheme() {
        for scheme in SchemeKind::ALL {
            let env = Envelope {
                header: EnvelopeHeader {
                    kind: MessageKind::Complete,
                    scheme,
                    session: 42,
                    generation: GENERATION_OBJECT,
                },
                message: Message::Complete,
            };
            let bytes = encode_envelope(&env);
            assert_eq!(bytes.len(), ENVELOPE_HEADER_BYTES);
            assert_eq!(decode(&bytes).unwrap(), env);
            assert_eq!(decode_header(&bytes).unwrap(), env.header);
        }
    }

    #[test]
    fn data_header_roundtrip_carries_vector_not_payload() {
        let packet = sample_packet();
        let msg = Message::DataHeader {
            transfer: 77,
            trace: sample_trace(),
            payload_size: packet.payload_size(),
            vector: packet.vector().clone(),
        };
        let bytes = encode(&header(MessageKind::DataHeader), &msg);
        // Envelope + transfer id + trace context + gf2 header; no
        // payload bytes.
        assert_eq!(
            bytes.len(),
            ENVELOPE_HEADER_BYTES
                + 8
                + TRACE_CONTEXT_BYTES
                + gf2_wire::header_size(packet.code_length())
        );
        let decoded = decode(&bytes).unwrap();
        match decoded.message {
            Message::DataHeader { transfer, trace, payload_size, vector } => {
                assert_eq!(transfer, 77);
                assert_eq!(trace, sample_trace());
                assert_eq!(payload_size, 9);
                assert_eq!(&vector, packet.vector());
            }
            other => panic!("wrong message {other:?}"),
        }
    }

    #[test]
    fn data_payload_roundtrip() {
        let packet = sample_packet();
        let msg =
            Message::DataPayload { transfer: 5, trace: sample_trace(), packet: packet.clone() };
        let bytes = encode(&header(MessageKind::DataPayload), &msg);
        let decoded = decode(&bytes).unwrap();
        match decoded.message {
            Message::DataPayload { transfer, trace, packet: p } => {
                assert_eq!(transfer, 5);
                assert_eq!(trace, sample_trace());
                assert_eq!(p, packet);
            }
            other => panic!("wrong message {other:?}"),
        }
    }

    #[test]
    fn decode_view_borrows_the_payload_and_materializes_equal() {
        let packet = sample_packet();
        let msg =
            Message::DataPayload { transfer: 5, trace: sample_trace(), packet: packet.clone() };
        let bytes = encode(&header(MessageKind::DataPayload), &msg);
        let view = decode_view(&bytes).unwrap();
        match &view.message {
            MessageView::DataPayload { packet: p, .. } => {
                // The view's payload points into the frame buffer itself.
                let payload_start = bytes.len() - packet.payload_size();
                assert!(std::ptr::eq(p.payload_bytes().as_ptr(), bytes[payload_start..].as_ptr()));
            }
            other => panic!("wrong message {other:?}"),
        }
        assert_eq!(view.into_envelope(), decode(&bytes).unwrap());
        // Non-payload kinds materialize identically too.
        let bytes = encode(&header(MessageKind::Complete), &Message::Complete);
        assert_eq!(decode_view(&bytes).unwrap().into_envelope(), decode(&bytes).unwrap());
    }

    #[test]
    fn trace_context_lineage_rules() {
        let fresh = TraceContext::origin_now();
        assert_eq!(fresh.hop, 0);
        assert_eq!(fresh.links(), 1);
        // A relay absorbs: earliest origin, deepest hop, then stamps +1.
        let a = TraceContext { origin_micros: 500, hop: 1 };
        let b = TraceContext { origin_micros: 900, hop: 3 };
        let stamped = a.absorb(b).next_hop();
        assert_eq!(stamped, TraceContext { origin_micros: 500, hop: 4 });
        assert_eq!(stamped.links(), 5);
        // Hop depth saturates instead of wrapping.
        let deep = TraceContext { origin_micros: 1, hop: u16::MAX };
        assert_eq!(deep.next_hop().hop, u16::MAX);
        // Clock skew into the future reads as zero latency, not 2^64.
        let future = TraceContext { origin_micros: u64::MAX, hop: 0 };
        assert_eq!(future.latency_micros(), 0);
    }

    #[test]
    fn feedback_kinds_encode_accept_flag() {
        for accept in [true, false] {
            let kind =
                if accept { MessageKind::FeedbackAccept } else { MessageKind::FeedbackAbort };
            let msg = Message::Feedback { transfer: 9, accept };
            let bytes = encode(&header(kind), &msg);
            let decoded = decode(&bytes).unwrap();
            assert_eq!(decoded.header.kind, kind);
            assert_eq!(decoded.message, msg);
        }
    }

    #[test]
    fn every_truncation_errors_never_panics() {
        let packet = sample_packet();
        let frames = [
            encode(&header(MessageKind::Complete), &Message::Complete),
            encode(
                &header(MessageKind::FeedbackAbort),
                &Message::Feedback { transfer: 1, accept: false },
            ),
            encode(
                &header(MessageKind::DataHeader),
                &Message::DataHeader {
                    transfer: 2,
                    trace: sample_trace(),
                    payload_size: packet.payload_size(),
                    vector: packet.vector().clone(),
                },
            ),
            encode(
                &header(MessageKind::DataPayload),
                &Message::DataPayload {
                    transfer: 3,
                    trace: sample_trace(),
                    packet: packet.clone(),
                },
            ),
            encode(&header(MessageKind::Request), &Message::Request),
            encode(
                &header(MessageKind::Manifest),
                &Message::Manifest { object_len: 1000, code_length: 16, payload_size: 64 },
            ),
            encode(&header(MessageKind::Reject), &Message::Reject),
        ];
        for frame in &frames {
            for cut in 0..frame.len() {
                let err = decode(&frame[..cut]).unwrap_err();
                assert!(
                    matches!(err, NetError::Truncated { .. }),
                    "cut {cut} of {} gave {err:?}",
                    frame.len()
                );
            }
            assert!(decode(frame).is_ok());
        }
    }

    #[test]
    fn required_len_matches_actual_length_incrementally() {
        let packet = sample_packet();
        let frame = encode(
            &header(MessageKind::DataPayload),
            &Message::DataPayload { transfer: 3, trace: sample_trace(), packet },
        );
        let mut have = 0;
        loop {
            match required_len(&frame[..have]) {
                Ok(len) => {
                    assert_eq!(len, frame.len());
                    break;
                }
                Err(NetError::Truncated { needed, .. }) => {
                    assert!(needed > have, "must make progress");
                    have = needed;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn serving_handshake_kinds_roundtrip() {
        let request = Envelope {
            header: EnvelopeHeader {
                kind: MessageKind::Request,
                scheme: SchemeKind::Rlnc,
                session: 0xB00C, // the object id in the serving handshake
                generation: GENERATION_OBJECT,
            },
            message: Message::Request,
        };
        let bytes = encode_envelope(&request);
        assert_eq!(bytes.len(), ENVELOPE_HEADER_BYTES);
        assert_eq!(decode(&bytes).unwrap(), request);

        let manifest = Message::Manifest { object_len: 70_000, code_length: 32, payload_size: 128 };
        let bytes = encode(&header(MessageKind::Manifest), &manifest);
        assert_eq!(bytes.len(), ENVELOPE_HEADER_BYTES + 16);
        assert_eq!(decode(&bytes).unwrap().message, manifest);

        let bytes = encode(&header(MessageKind::Reject), &Message::Reject);
        assert_eq!(decode(&bytes).unwrap().message, Message::Reject);
    }

    #[test]
    fn hostile_manifest_dimensions_are_capped() {
        let message = Message::Manifest { object_len: u64::MAX, code_length: 1, payload_size: 1 };
        let mut bytes = encode(&header(MessageKind::Manifest), &message);
        let k_at = ENVELOPE_HEADER_BYTES + 8;
        bytes[k_at..k_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(NetError::FrameTooLarge { .. })));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&header(MessageKind::Complete), &Message::Complete);
        bytes.push(0);
        assert_eq!(decode(&bytes).unwrap_err(), NetError::TrailingBytes { extra: 1 });
    }

    #[test]
    fn hostile_dimensions_do_not_allocate() {
        // A DataPayload advertising k = 2^31: must error via the cap, not
        // attempt a gigabyte bitmap.
        let mut bytes = encode(
            &header(MessageKind::DataPayload),
            &Message::DataPayload {
                transfer: 1,
                trace: sample_trace(),
                packet: EncodedPacket::new(CodeVector::zero(8), Payload::zero(4)),
            },
        );
        let wire_start = ENVELOPE_HEADER_BYTES + 8 + TRACE_CONTEXT_BYTES;
        bytes[wire_start..wire_start + 4].copy_from_slice(&(1u32 << 31).to_le_bytes());
        assert!(matches!(decode(&bytes), Err(NetError::FrameTooLarge { .. })));
    }

    #[test]
    fn wrong_magic_version_kind_scheme_all_error() {
        let good = encode(&header(MessageKind::Complete), &Message::Complete);
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(decode(&bad), Err(NetError::BadMagic(_))));
        let mut bad = good.clone();
        bad[4] = 99;
        assert_eq!(decode(&bad).unwrap_err(), NetError::BadVersion(99));
        let mut bad = good.clone();
        bad[5] = 200;
        assert_eq!(decode(&bad).unwrap_err(), NetError::BadKind(200));
        let mut bad = good;
        bad[6] = 9;
        assert_eq!(decode(&bad).unwrap_err(), NetError::BadScheme(9));
    }
}
