//! The sharded swarm runtime: every node multiplexed onto a few
//! `ltnc-reactor` worker threads.
//!
//! The threaded runtime spends two OS threads per node, which tops out
//! around the high hundreds of in-process nodes (scheduler pressure,
//! stack memory, context-switch churn). This module drives the *same*
//! [`NodeStateMachine`] from reactor callbacks instead: each node is a
//! [`Driven`] implementation whose nonblocking [`FaultySocket`] is
//! polled edge-triggered, whose gossip tick is a reactor timer, and
//! whose held-datagram release (reorder/duplicate holds that the
//! blocking runtime flushes on its 20ms read timeout) is a second,
//! on-demand timer. One protocol implementation, two schedulers — which
//! is what makes the reactor/thread equivalence tests meaningful.
//!
//! Differences from the threaded runtime, by design:
//!
//! * there is no bounded inter-thread queue, so
//!   [`ltnc_metrics::WireCounters::inbound_dropped`] stays zero —
//!   backpressure is the OS socket buffer instead;
//! * *delay* faults still block (`thread::sleep` inside the fault
//!   layer), which on this runtime stalls a whole worker shard — prefer
//!   drop/reorder/duplicate plans for large sharded runs.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::os::fd::RawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ltnc_reactor::{Cx, Driven, Reactor};
use ltnc_scheme::SchemeParams;
use ltnc_telemetry::{RingSink, ScrapeOptions, ScrapeServer, Tracer};

use crate::faults::{DatagramFaults, FaultySocket};
use crate::generation::split_object;
use crate::observe::{swarm_registry, FlightState, SwarmTelemetry};
use crate::peer::{
    publish_source_complete, spawn_scrape, NodeConfig, NodeOptions, NodeRole, NodeStateMachine,
    PeerReport, Shared,
};
use crate::swarm::{assemble_report, FlightRecorder, SwarmConfig, SwarmReport, SwarmWiring};

/// Timer tag of the recurring gossip tick.
const TICK_TAG: u64 = 0;

/// Timer tag of the one-shot held-datagram release.
const RELEASE_TAG: u64 = 1;

/// How long held (reordered/duplicated) datagrams wait before release —
/// the cadence the threaded runtime gets for free from its 20ms blocking
/// read timeout.
const RELEASE_DELAY: Duration = Duration::from_millis(20);

/// One node on the sharded runtime: the shared [`NodeStateMachine`]
/// plus the socket handle and timers that replace its dedicated threads.
struct ShardedNode {
    /// `Some` until [`Driven::finish`] extracts the report.
    sm: Option<NodeStateMachine>,
    /// Drain/release handle sharing the state machine's fault state.
    socket: FaultySocket,
    /// Gossip tick period ([`NodeOptions::tick`]).
    tick: Duration,
    /// Whether a RELEASE timer is already pending (one at a time).
    release_armed: bool,
    /// Metrics endpoint, when [`NodeOptions::metrics_bind`] asked for
    /// one; shut down in [`Driven::finish`].
    scrape: Option<ScrapeServer>,
}

impl ShardedNode {
    /// Drains the socket to `WouldBlock` — the edge-triggered contract —
    /// feeding every surviving datagram to the state machine, then arms
    /// a release timer if the fault layer parked anything.
    fn drain(&mut self, cx: &mut Cx) {
        if let Some(sm) = self.sm.as_mut() {
            loop {
                let buf = cx.scratch();
                match self.socket.try_recv_from(buf) {
                    Ok(Some((len, from))) => sm.handle_datagram(&buf[..len], from),
                    Ok(None) => break,
                    // Transient socket errors (e.g. ICMP port-unreachable
                    // surfacing as ECONNREFUSED) are not fatal for a
                    // datagram listener — same stance as the threaded
                    // socket loop.
                    Err(_) => break,
                }
            }
        }
        self.check_held(cx);
    }

    /// Arms the one-shot release timer when the fault layer holds
    /// datagrams (reorder/duplicate parking) and no release is pending.
    fn check_held(&mut self, cx: &mut Cx) {
        if !self.release_armed && self.socket.has_held_datagrams() {
            cx.arm(RELEASE_DELAY, RELEASE_TAG);
            self.release_armed = true;
        }
    }
}

impl Driven for ShardedNode {
    type Control = ();
    type Output = PeerReport;

    fn fd(&self) -> RawFd {
        self.socket.as_raw_fd()
    }

    fn on_start(&mut self, cx: &mut Cx) {
        cx.arm(self.tick, TICK_TAG);
        self.drain(cx);
    }

    fn on_readable(&mut self, cx: &mut Cx) {
        self.drain(cx);
    }

    fn on_timer(&mut self, tag: u64, cx: &mut Cx) {
        match tag {
            TICK_TAG => {
                if let Some(sm) = self.sm.as_mut() {
                    sm.tick();
                }
                cx.arm(self.tick, TICK_TAG);
                self.check_held(cx);
            }
            RELEASE_TAG => {
                self.release_armed = false;
                self.socket.release_held();
                self.drain(cx);
            }
            _ => {}
        }
    }

    fn on_control(&mut self, (): (), _cx: &mut Cx) {}

    fn finish(&mut self) -> PeerReport {
        if let Some(scrape) = self.scrape.take() {
            scrape.shutdown();
        }
        self.sm.take().expect("finish is called exactly once").into_report()
    }
}

/// Runs a wired swarm on the sharded reactor runtime — the
/// [`crate::swarm::SwarmRuntime::Sharded`] arm of
/// [`crate::swarm::run_wired_swarm`], which has already validated
/// `config` and `wiring`.
pub(crate) fn run_sharded(
    config: &SwarmConfig,
    wiring: &SwarmWiring,
    workers: usize,
) -> io::Result<SwarmReport> {
    let node_count = config.peers + 1;
    let params = SchemeParams::new(config.scheme, config.code_length, config.payload_size);
    let manifest = split_object(&config.object, params).0;
    let bind: SocketAddr = "127.0.0.1:0".parse().expect("valid address");

    // Same per-node fault re-seeding as the threaded runtime, so a fixed
    // template seed describes the same per-link fault plans on both.
    let node_faults = |index: u64| match &config.faults {
        Some(template) => template.for_node(index),
        None => DatagramFaults::clean(config.options.seed ^ index),
    };

    let mut nodes: Vec<ShardedNode> = Vec::with_capacity(node_count);
    let mut sinks: Vec<Option<Arc<RingSink>>> = Vec::with_capacity(node_count);
    let mut completion: Vec<Arc<Shared>> = Vec::with_capacity(node_count);
    let mut node_addrs: Vec<SocketAddr> = Vec::with_capacity(node_count);
    for i in 0..node_count {
        // Role and seed derivation match run_wired_swarm exactly — the
        // equivalence tests rely on both runtimes building identical
        // state machines.
        let role = if i == 0 {
            NodeRole::Source { object: config.object.clone(), params }
        } else {
            NodeRole::Peer { manifest }
        };
        let seed = if i == 0 {
            config.options.seed ^ 0xD15E
        } else {
            config.options.seed.wrapping_add(i as u64)
        };
        let sink = config.trace_capacity.map(|capacity| Arc::new(RingSink::new(capacity)));
        sinks.push(sink.clone());
        let mut node_config =
            NodeConfig::new(config.session, role, NodeOptions { seed, ..config.options });
        node_config.trace = sink.map(|sink| sink as _);
        // The aggregated endpoint reads every node's live mirror, so
        // the per-tick refresh must run even without per-node endpoints.
        node_config.publish_live = config.metrics_bind.is_some();

        let tracer = Tracer::from_option(node_config.trace.clone());
        // An early `?` here drops the nodes built so far; their
        // ScrapeServers stop on drop, and no reactor threads exist yet.
        let socket =
            FaultySocket::with_tracer(UdpSocket::bind(bind)?, node_faults(i as u64), tracer)?;
        socket.set_nonblocking(true)?;
        let local_addr = socket.local_addr()?;

        let shared = Arc::new(Shared::new());
        publish_source_complete(&node_config.role, &shared);
        let scrape = spawn_scrape(&node_config.options, local_addr, &shared, &socket)?;
        let tick = node_config.options.tick;
        let sm = NodeStateMachine::new(socket.try_clone()?, node_config, Arc::clone(&shared));

        completion.push(shared);
        node_addrs.push(local_addr);
        nodes.push(ShardedNode { sm: Some(sm), socket, tick, release_armed: false, scrape });
    }

    // Link plans and peer wiring both go in before the reactor exists —
    // no state machine runs until Reactor::start, so there is no window
    // where early datagrams cross a link un-faulted (the threaded
    // runtime needs careful ordering for the same guarantee).
    for &(from, to, plan) in &wiring.link_faults {
        nodes[to].socket.set_link_plan(node_addrs[from], plan);
    }
    for (i, node) in nodes.iter_mut().enumerate() {
        let targets: Vec<SocketAddr> =
            wiring.push_targets[i].iter().map(|&j| node_addrs[j]).collect();
        node.sm.as_mut().expect("state machine present before start").set_peers(targets);
    }

    // Instrumentation is opt-in: with neither the aggregated endpoint
    // nor the flight recorder requested, no observer is installed and
    // the reactor's hot loops take zero extra clock readings.
    let telemetry =
        (config.metrics_bind.is_some() || config.flight_recorder.is_some()).then(|| {
            let capacity = config.flight_recorder.as_ref().map(|recorder| recorder.capacity);
            let telemetry = Arc::new(SwarmTelemetry::new(workers, capacity));
            telemetry.set_node_counts(node_count);
            telemetry
        });

    let started = Instant::now();
    let flight: Option<(FlightRecorder, FlightState)> =
        config.flight_recorder.as_ref().zip(telemetry.as_ref()).map(|(recorder, telemetry)| {
            let state = FlightState {
                started,
                telemetry: Arc::clone(telemetry),
                completion: completion.clone(),
                stall_window: recorder.stall_window,
            };
            (recorder.clone(), state)
        });

    // The swarm-wide endpoint goes up before the reactor so an early
    // start failure tears it down by drop; sampling an idle registry is
    // harmless.
    let scrape = match config.metrics_bind {
        Some(addr) => {
            let registry = Arc::new(swarm_registry(
                &completion,
                manifest.generation_count(),
                telemetry.as_deref(),
            ));
            let spawned = match &flight {
                Some((_, state)) => {
                    let state = state.clone();
                    ScrapeServer::spawn_with_flight(
                        addr,
                        registry,
                        ScrapeOptions::default(),
                        Arc::new(move || state.dump("demand", None)),
                    )
                }
                None => ScrapeServer::spawn(addr, registry, ScrapeOptions::default()),
            };
            Some(spawned?)
        }
        None => None,
    };

    let observer = telemetry.clone().map(|telemetry| telemetry as _);
    let reactor = Reactor::start_observed(nodes, workers, observer)?;

    // Completion poll doubling as the stall watchdog: the progress
    // signal is monotone (innovative symbols decoded + generations
    // completed, swarm-wide), so "unchanged for a whole stall window"
    // means no receiver advanced at all — cut a post-mortem once per
    // stall episode, and re-arm if progress ever resumes.
    let mut flight_dump: Option<String> = None;
    let progress_signal = |completion: &[Arc<Shared>]| -> u64 {
        completion[1..]
            .iter()
            .map(|shared| {
                shared.decoded_rank.load(Ordering::Relaxed)
                    + shared.complete_generations.load(Ordering::Acquire) as u64
            })
            .sum()
    };
    let mut last_progress = progress_signal(&completion);
    let mut last_change = Instant::now();
    let mut stalled = false;
    let deadline = started + config.timeout;
    while completion[1..].iter().any(|shared| !shared.complete.load(Ordering::Acquire))
        && Instant::now() < deadline
    {
        thread::sleep(Duration::from_millis(5));
        let Some((recorder, state)) = &flight else { continue };
        let signal = progress_signal(&completion);
        if signal != last_progress {
            last_progress = signal;
            last_change = Instant::now();
            stalled = false;
        } else if !stalled && last_change.elapsed() >= recorder.stall_window {
            stalled = true;
            let idle = last_change.elapsed();
            state.telemetry.note_stall(idle);
            let dump = state.dump("stall", Some(idle));
            write_dump(recorder, &dump);
            flight_dump = Some(dump);
        }
    }
    let elapsed = started.elapsed();

    if completion[1..].iter().any(|shared| !shared.complete.load(Ordering::Acquire)) {
        if let Some((recorder, state)) = &flight {
            let dump = state.dump("shutdown_timeout", None);
            write_dump(recorder, &dump);
            flight_dump = Some(dump);
        }
    }

    // Shutdown returns reports in original node order; pair each with
    // its trace sink, exactly like the threaded teardown.
    let reports: Vec<PeerReport> = reactor
        .shutdown()
        .into_iter()
        .zip(sinks)
        .map(|(mut report, sink)| {
            if let Some(sink) = sink {
                report.events = sink.drain();
            }
            report
        })
        .collect();
    if let Some(scrape) = scrape {
        scrape.shutdown();
    }

    let mut report =
        assemble_report(config, manifest.generation_count(), elapsed, node_addrs, reports);
    if let Some(telemetry) = &telemetry {
        report.reactor = telemetry.snapshots();
    }
    report.flight_dump = flight_dump;
    Ok(report)
}

/// Best-effort write of a flight dump to the recorder's configured path
/// (the dump also rides the report either way).
fn write_dump(recorder: &FlightRecorder, dump: &str) {
    if let Some(path) = &recorder.dump_path {
        let _ = std::fs::write(path, dump);
    }
}
