//! The peer actor: a scheme node behind a real UDP socket.
//!
//! The concurrency model is deliberately simple — blocking I/O on
//! dedicated OS threads with bounded channels between them, not an async
//! runtime (the build environment has no tokio; the sans-io codec and the
//! actor structure port to one unchanged, see ROADMAP). Each [`PeerNode`]
//! owns two OS threads:
//!
//! * the **socket thread** blocks on `recv_from` (with a short timeout so
//!   shutdown is prompt) and forwards raw datagrams into a *bounded*
//!   channel — when the actor falls behind, datagrams are dropped and
//!   counted rather than buffered without bound (backpressure);
//! * the **actor thread** owns all coding state ([`SourceSession`] /
//!   [`ReceiverSession`]), processes inbound messages, and on every tick
//!   pushes header-first transfer offers to randomly chosen peers, subject
//!   to the aggressiveness gate and a per-peer in-flight budget.
//!
//! The in-flight budget is **loss-adaptive** by default (AIMD, with the
//! asymmetry inverted relative to TCP because loss here is erasure, not
//! congestion): an offer that times out while the peer is still
//! answering *other* offers proves the link lossy — that offer pinned a
//! budget slot down for a whole TTL, so the budget grows additively to
//! hand the slot back and keep the live pipeline deep (the paper's
//! redundancy-tracks-the-channel point applied to pacing). A peer gone
//! entirely silent for a TTL is treated as dead: its budget is cut
//! multiplicatively (at most once per TTL window) down to the floor,
//! sparing offers for live peers — and its feedback, once it returns,
//! grows the budget back to (never past) its initial value, so one
//! outage is not a life sentence at the floor. On a clean link nothing
//! times out and the budget never moves — fixed-cap behaviour exactly.
//! Bounds come
//! from [`NodeOptions::inflight_floor`] /
//! [`NodeOptions::inflight_ceiling`]; per-peer loss estimates (EWMA over
//! offer outcomes) are reported in [`PeerReport::loss_estimates`], and
//! budget moves are counted in [`WireCounters`].
//!
//! The pending TTL itself is **latency-adaptive** by default: every
//! feedback arrival is an offer→feedback RTT sample, and the TTL in
//! force per peer is a multiple of that peer's RTT EWMA, clamped so the
//! configured [`NodeOptions::pending_ttl`] stays the floor (and the
//! fallback before any feedback has been measured). On localhost the
//! derived TTL equals the floor; across slow or jittery links it grows
//! with the measured round trip, so live offers are not declared lost —
//! and budget slots not churned — by latency alone. Estimates are
//! reported in [`PeerReport::rtt_estimates`];
//! [`NodeOptions::adaptive_ttl`] switches the derivation off.
//!
//! All traffic runs through a [`FaultySocket`], so seeded datagram
//! loss/reordering ([`PeerNode::spawn_faulty`]) exercises the same code
//! paths as a clean socket ([`PeerNode::spawn`]).
//!
//! The transfer protocol mirrors the paper's binary feedback channel (see
//! [`crate::envelope`]): `DATA-HEADER` offer → `FEEDBACK-ACCEPT`/`ABORT` →
//! `DATA-PAYLOAD`. An aborted transfer costs the wire only the header and
//! the one-byte-of-intent feedback datagram — never payload bytes.
//! `COMPLETE` messages prune finished generations from every sender's
//! schedule.
//!
//! The public handle is deliberately small: spawn, wire up peers, poll
//! completion, shut down gracefully and collect a [`PeerReport`].

use std::collections::{HashMap, HashSet};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ltnc_gf2::EncodedPacket;
use ltnc_metrics::{HopLatency, LogHistogramSnapshot, OpCounters, WireCounters};
use ltnc_scheme::SchemeParams;
use ltnc_telemetry::{
    hop_latency_histograms, wire_samples, MetricsRegistry, ScrapeOptions, ScrapeServer, TimedEvent,
    TraceEvent, TraceSink, Tracer,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::envelope::{
    self, EnvelopeHeader, EnvelopeView, Message, MessageKind, MessageView, TraceContext,
    GENERATION_OBJECT,
};
use crate::faults::{DatagramFaultCounters, DatagramFaultPlan, DatagramFaults, FaultySocket};
use crate::generation::{ObjectManifest, ReceiverSession, SourceSession};

/// Smoothing factor of the per-peer loss EWMA (higher reacts faster).
const LOSS_EWMA_ALPHA: f64 = 0.1;

/// Multiplicative-decrease factor applied to an adaptive budget when
/// offers to a peer time out.
const BUDGET_CUT_FACTOR: f64 = 0.5;

/// Smoothing factor of the per-peer offer→feedback RTT EWMA.
const RTT_EWMA_ALPHA: f64 = 0.2;

/// Derived pending TTL as a multiple of the measured RTT: an offer is
/// declared lost once several round trips have passed without feedback.
const RTT_TTL_FACTOR: f64 = 4.0;

/// Cap on the derived TTL relative to the configured
/// [`NodeOptions::pending_ttl`] floor, so one absurd RTT sample cannot
/// freeze eviction.
const RTT_TTL_CEILING_FACTOR: u32 = 16;

/// What a node is in the session.
pub enum NodeRole {
    /// Holds the full object and only emits.
    Source {
        /// The object to disseminate.
        object: Vec<u8>,
        /// Scheme and code dimensions.
        params: SchemeParams,
    },
    /// Starts empty; decodes, relays and eventually reconstructs.
    Peer {
        /// The manifest agreed with the source.
        manifest: ObjectManifest,
    },
}

/// Tuning knobs of a peer actor.
#[derive(Debug, Clone, Copy)]
pub struct NodeOptions {
    /// Fraction of `k` a relay must hold (per generation) before it starts
    /// recoding — the paper's aggressiveness parameter. Sources ignore it.
    pub aggressiveness: f64,
    /// Transfer offers initiated per tick.
    pub push_rate: usize,
    /// Transfers simultaneously awaiting feedback per peer: the *initial*
    /// budget when [`NodeOptions::adaptive_pacing`] is on, the fixed cap
    /// when it is off.
    pub per_peer_inflight: usize,
    /// Adapt each peer's in-flight budget to observed loss (AIMD over
    /// feedback arrivals and offer timeouts). Off means the fixed
    /// [`NodeOptions::per_peer_inflight`] cap of the original design.
    pub adaptive_pacing: bool,
    /// Lower bound of an adaptive budget (treated as at least 1).
    pub inflight_floor: usize,
    /// Upper bound of an adaptive budget.
    pub inflight_ceiling: usize,
    /// Gossip tick period.
    pub tick: Duration,
    /// Offers not answered within the pending TTL are forgotten. With
    /// [`NodeOptions::adaptive_ttl`] on, this fixed value is the *floor*
    /// (and the fallback before any feedback has been measured): the TTL
    /// actually in force per peer is derived from the offer→feedback RTT
    /// EWMA, clamped to `[pending_ttl, 16 × pending_ttl]`.
    pub pending_ttl: Duration,
    /// Derive each peer's pending TTL (and the silence window of the
    /// pacing budget) from its measured offer→feedback RTT. Off means the
    /// fixed [`NodeOptions::pending_ttl`] everywhere, as before PR 5.
    pub adaptive_ttl: bool,
    /// Capacity of the bounded inbound datagram queue.
    pub queue_capacity: usize,
    /// Seed of the node's deterministic RNG.
    pub seed: u64,
    /// When set, the node serves its live [`WireCounters`] (and injected
    /// fault counters) over a TCP scrape endpoint bound here — see
    /// [`PeerNode::metrics_addr`]. Port 0 picks a free port. `None` (the
    /// default) spawns nothing.
    pub metrics_bind: Option<SocketAddr>,
}

impl NodeOptions {
    /// Bounds of an adaptive budget: `(floor, ceiling)`, floor ≥ 1.
    fn budget_bounds(&self) -> (f64, f64) {
        let floor = self.inflight_floor.max(1) as f64;
        let ceiling = (self.inflight_ceiling as f64).max(floor);
        (floor, ceiling)
    }

    /// The clamped budget every fresh per-peer pacing entry starts with
    /// (also the cap for peers with no pacing state yet).
    fn initial_budget(&self) -> f64 {
        let (floor, ceiling) = self.budget_bounds();
        (self.per_peer_inflight.max(1) as f64).clamp(floor, ceiling)
    }

    /// The pending TTL in force for a peer with the given RTT estimate:
    /// `RTT_TTL_FACTOR × rtt` clamped to `[pending_ttl, 16 × pending_ttl]`.
    /// Without a measurement (or with [`NodeOptions::adaptive_ttl`] off)
    /// the fixed [`NodeOptions::pending_ttl`] applies.
    fn derived_ttl(&self, rtt_ewma: Option<f64>) -> Duration {
        let floor = self.pending_ttl;
        let Some(rtt) = rtt_ewma.filter(|_| self.adaptive_ttl) else {
            return floor;
        };
        Duration::from_secs_f64((rtt * RTT_TTL_FACTOR).max(0.0))
            .clamp(floor, floor.saturating_mul(RTT_TTL_CEILING_FACTOR))
    }
}

impl Default for NodeOptions {
    fn default() -> Self {
        NodeOptions {
            aggressiveness: 0.01,
            push_rate: 2,
            per_peer_inflight: 4,
            adaptive_pacing: true,
            inflight_floor: 1,
            inflight_ceiling: 64,
            tick: Duration::from_millis(2),
            pending_ttl: Duration::from_millis(250),
            adaptive_ttl: true,
            queue_capacity: 1024,
            seed: 0xC0DE,
            metrics_bind: None,
        }
    }
}

/// Full configuration of one node.
pub struct NodeConfig {
    /// Session identifier shared by every node of the dissemination.
    pub session: u64,
    /// Source or peer.
    pub role: NodeRole,
    /// Tuning knobs.
    pub options: NodeOptions,
    /// Optional sink receiving [`TraceEvent`]s from the node's hot paths
    /// (offers, feedback, pacing moves, fault injections). `None` — the
    /// default, see [`NodeConfig::new`] — makes every hook a no-op.
    pub trace: Option<Arc<dyn TraceSink>>,
    /// Force the per-tick live mirror refresh even without a per-node
    /// metrics endpoint — set by swarm drivers whose *aggregated*
    /// endpoint reads every node's [`Shared`] mid-run.
    pub(crate) publish_live: bool,
}

impl NodeConfig {
    /// A configuration with no trace sink installed.
    #[must_use]
    pub fn new(session: u64, role: NodeRole, options: NodeOptions) -> NodeConfig {
        NodeConfig { session, role, options, trace: None, publish_live: false }
    }
}

/// Final accounting returned by [`PeerNode::shutdown`].
#[derive(Debug, Clone)]
pub struct PeerReport {
    /// Transport-level counters.
    pub wire: WireCounters,
    /// Whether every generation decoded.
    pub complete: bool,
    /// Number of generations decoded.
    pub complete_generations: usize,
    /// The reassembled object (receivers only, once complete).
    pub object: Option<Vec<u8>>,
    /// Coding cost of the reception/decoding path.
    pub decoding: OpCounters,
    /// Coding cost of the emission/recoding path.
    pub recoding: OpCounters,
    /// Faults the node's [`FaultySocket`] injected (all zero for
    /// [`PeerNode::spawn`]'s clean socket).
    pub faults: DatagramFaultCounters,
    /// Final per-peer loss estimates (EWMA over offer outcomes: feedback
    /// arrived = 0, offer timed out = 1), sorted by peer address.
    pub loss_estimates: Vec<(SocketAddr, f64)>,
    /// Final per-peer offer→feedback RTT estimates (EWMA over measured
    /// round trips; peers that never answered are absent), sorted by peer
    /// address. With [`NodeOptions::adaptive_ttl`] on, each peer's
    /// pending TTL was derived from this estimate.
    pub rtt_estimates: Vec<(SocketAddr, Duration)>,
    /// Faults injected per inbound link plan
    /// ([`PeerNode::set_link_faults`]), keyed by sender address — the
    /// per-link attribution of [`PeerReport::faults`] in topology runs.
    pub link_faults: Vec<(SocketAddr, DatagramFaultCounters)>,
    /// Trace events recorded during the run, oldest first. Populated by
    /// harnesses that install a draining sink (e.g. a swarm run with
    /// [`crate::SwarmConfig::trace_capacity`] set); empty when no sink
    /// was attached or the sink is owned by the caller.
    pub events: Vec<TimedEvent>,
    /// Origin→delivery latency distributions from wire-carried trace
    /// contexts, one entry per populated hop depth (number of overlay
    /// links crossed), sorted by depth. Sources (which deliver nothing)
    /// report an empty list.
    pub latency_by_hop: Vec<(usize, LogHistogramSnapshot)>,
}

enum Control {
    SetPeers(Vec<SocketAddr>),
    Shutdown,
}

/// State a node publishes for observers outside its own dispatch
/// context — the `PeerNode` handle and scrape endpoint on the threaded
/// runtime, the swarm driver's completion poll on the sharded one.
pub(crate) struct Shared {
    pub(crate) complete: AtomicBool,
    pub(crate) complete_generations: AtomicUsize,
    pub(crate) inbound_dropped: AtomicU64,
    pub(crate) stop: AtomicBool,
    /// Live mirror of the state machine's [`WireCounters`], refreshed
    /// once per gossip tick — only when a metrics endpoint is attached
    /// ([`NodeOptions::metrics_bind`]); never touched otherwise.
    pub(crate) wire: Mutex<WireCounters>,
    /// Origin→delivery latency histograms keyed by hop depth, recorded
    /// lock-free by the state machine on every payload arrival and read
    /// live by the scrape endpoint mid-run.
    pub(crate) latency: HopLatency,
    /// Total innovative (rank-increasing) symbols decoded so far, bumped
    /// on every useful delivery. Always maintained — it is one relaxed
    /// add — because the sharded runtime's stall watchdog uses it as its
    /// progress signal even when no metrics endpoint is attached.
    pub(crate) decoded_rank: AtomicU64,
    /// Per-generation decoder rank mirror (useful symbols accumulated
    /// per generation), refreshed once per gossip tick alongside the
    /// wire mirror — same `publish_live` gate, same cost model. Empty
    /// until the first refresh (and always, for sources).
    pub(crate) decoder: Mutex<Vec<u64>>,
}

impl Shared {
    pub(crate) fn new() -> Shared {
        Shared {
            complete: AtomicBool::new(false),
            complete_generations: AtomicUsize::new(0),
            inbound_dropped: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            wire: Mutex::new(WireCounters::new()),
            latency: HopLatency::new(),
            decoded_rank: AtomicU64::new(0),
            decoder: Mutex::new(Vec::new()),
        }
    }

    /// The per-generation rank mirror as last published (empty when the
    /// node never published, i.e. no live endpoint was attached).
    pub(crate) fn decoder_ranks(&self) -> Vec<u64> {
        self.decoder.lock().map(|ranks| ranks.clone()).unwrap_or_default()
    }

    /// The published wire counters plus the socket thread's drop count.
    pub(crate) fn wire_snapshot(&self) -> WireCounters {
        let mut wire = self.wire.lock().map(|wire| *wire).unwrap_or_default();
        wire.inbound_dropped += self.inbound_dropped.load(Ordering::Acquire);
        wire
    }
}

/// Handle to a running peer actor.
pub struct PeerNode {
    local_addr: SocketAddr,
    /// A handle onto the node's socket sharing the threads' fault state,
    /// kept so link plans can be installed after spawn (addresses are
    /// only known once every node of a topology is bound).
    socket: FaultySocket,
    control: mpsc::Sender<Control>,
    shared: Arc<Shared>,
    actor: JoinHandle<PeerReport>,
    socket_thread: JoinHandle<()>,
    scrape: Option<ScrapeServer>,
}

impl PeerNode {
    /// Binds a UDP socket on `bind` (use port 0 for an ephemeral port) and
    /// spawns the socket and actor threads. The node stays quiet until
    /// [`PeerNode::set_peers`] wires it into the swarm.
    ///
    /// # Errors
    ///
    /// Propagates socket creation/configuration failures.
    pub fn spawn(bind: SocketAddr, config: NodeConfig) -> io::Result<PeerNode> {
        let seed = config.options.seed;
        PeerNode::spawn_faulty(bind, config, DatagramFaults::clean(seed))
    }

    /// Like [`PeerNode::spawn`], but every datagram this node sends or
    /// receives crosses the seeded `faults` plans first — the way the
    /// swarm tests emulate lossy, reordering links without touching the
    /// protocol code.
    ///
    /// # Errors
    ///
    /// Propagates socket creation/configuration failures.
    pub fn spawn_faulty(
        bind: SocketAddr,
        config: NodeConfig,
        faults: DatagramFaults,
    ) -> io::Result<PeerNode> {
        let tracer = Tracer::from_option(config.trace.clone());
        let socket = FaultySocket::with_tracer(UdpSocket::bind(bind)?, faults, tracer)?;
        socket.set_read_timeout(Some(Duration::from_millis(20)))?;
        let local_addr = socket.local_addr()?;

        let shared = Arc::new(Shared::new());
        // A source is complete by definition; publish that before the
        // actor thread even starts so the handle never reports a stale
        // "incomplete" for it.
        publish_source_complete(&config.role, &shared);

        let (event_tx, event_rx) = mpsc::sync_channel(config.options.queue_capacity.max(1));
        let (control_tx, control_rx) = mpsc::channel();

        let socket_thread = {
            let socket = socket.try_clone()?;
            let shared = Arc::clone(&shared);
            thread::spawn(move || socket_loop(&socket, &event_tx, &shared))
        };

        let scrape = spawn_scrape(&config.options, local_addr, &shared, &socket)?;

        let handle = socket.try_clone()?;
        let actor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                NodeStateMachine::new(socket, config, shared).run(&event_rx, &control_rx)
            })
        };

        Ok(PeerNode {
            local_addr,
            socket: handle,
            control: control_tx,
            shared,
            actor,
            socket_thread,
            scrape,
        })
    }

    /// Installs a dedicated inbound fault plan for datagrams arriving
    /// from `from` — one overlay *link* of a topology, identified by its
    /// sender. Overrides the node's default inbound plan for that origin
    /// only; injected faults are tallied per link in
    /// [`PeerReport::link_faults`] (and in [`PeerReport::faults`]).
    pub fn set_link_faults(&self, from: SocketAddr, plan: DatagramFaultPlan) {
        self.socket.set_link_plan(from, plan);
    }

    /// The socket address this node receives on.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle onto the node's published shared state — what the
    /// swarm-wide aggregated registry samples.
    pub(crate) fn shared(node: &PeerNode) -> Arc<Shared> {
        Arc::clone(&node.shared)
    }

    /// Wires the node into the swarm and starts its gossip ticks.
    pub fn set_peers(&self, peers: Vec<SocketAddr>) {
        let _ = self.control.send(Control::SetPeers(peers));
    }

    /// Whether the node has decoded every generation (sources report
    /// `true` immediately).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.shared.complete.load(Ordering::Acquire)
    }

    /// Number of generations decoded so far.
    #[must_use]
    pub fn complete_generations(&self) -> usize {
        self.shared.complete_generations.load(Ordering::Acquire)
    }

    /// The node's live wire counters, as published once per gossip tick.
    /// Only meaningful with [`NodeOptions::metrics_bind`] set (the actor
    /// skips the mirror otherwise and this returns zeros until shutdown).
    #[must_use]
    pub fn counters(&self) -> WireCounters {
        self.shared.wire_snapshot()
    }

    /// The address of the node's metrics scrape endpoint (`GET /metrics`
    /// for Prometheus text, `GET /metrics.json` for JSON), or `None`
    /// when [`NodeOptions::metrics_bind`] was not set.
    #[must_use]
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.scrape.as_ref().map(ScrapeServer::local_addr)
    }

    /// Graceful shutdown: stops gossiping, joins both threads and returns
    /// the final report.
    ///
    /// # Panics
    ///
    /// Panics if an internal thread panicked.
    #[must_use]
    pub fn shutdown(self) -> PeerReport {
        let _ = self.control.send(Control::Shutdown);
        self.shared.stop.store(true, Ordering::Release);
        let mut report = self.actor.join().expect("actor thread panicked");
        self.socket_thread.join().expect("socket thread panicked");
        if let Some(scrape) = self.scrape {
            scrape.shutdown();
        }
        report.wire.inbound_dropped += self.shared.inbound_dropped.load(Ordering::Acquire);
        report
    }
}

/// [`DatagramFaultCounters`] as registry samples (family `faults`).
fn fault_samples(c: &DatagramFaultCounters) -> Vec<ltnc_telemetry::Sample> {
    use ltnc_telemetry::Sample;
    vec![
        Sample::plain("dropped_in", c.dropped_in),
        Sample::plain("dropped_out", c.dropped_out),
        Sample::plain("duplicated_in", c.duplicated_in),
        Sample::plain("duplicated_out", c.duplicated_out),
        Sample::plain("reordered_in", c.reordered_in),
        Sample::plain("reordered_out", c.reordered_out),
        Sample::plain("delayed_in", c.delayed_in),
        Sample::plain("delayed_out", c.delayed_out),
    ]
}

/// Publishes a source's by-definition completion on `shared` before any
/// runtime drives its state machine, so completion observers never see a
/// stale "incomplete" for it. A no-op for receivers.
pub(crate) fn publish_source_complete(role: &NodeRole, shared: &Shared) {
    if let NodeRole::Source { object, params } = role {
        let manifest = ObjectManifest { object_len: object.len() as u64, params: *params };
        shared.complete.store(true, Ordering::Release);
        shared.complete_generations.store(manifest.generation_count() as usize, Ordering::Release);
    }
}

/// Spawns the node's metrics scrape endpoint when
/// [`NodeOptions::metrics_bind`] is set. The endpoint reads the shared
/// live mirror (refreshed per tick by the state machine) and the
/// socket's fault totals — it never touches state-machine state
/// directly, which is what lets both runtimes share it.
pub(crate) fn spawn_scrape(
    options: &NodeOptions,
    local_addr: SocketAddr,
    shared: &Arc<Shared>,
    socket: &FaultySocket,
) -> io::Result<Option<ScrapeServer>> {
    let Some(addr) = options.metrics_bind else { return Ok(None) };
    let registry = Arc::new(MetricsRegistry::new());
    let node_label = [("node", local_addr.to_string())];
    let wire_shared = Arc::clone(shared);
    registry.register("wire", &node_label, move || wire_samples(&wire_shared.wire_snapshot()));
    let latency_shared = Arc::clone(shared);
    registry.register_histograms("wire", &node_label, move || {
        hop_latency_histograms(&latency_shared.latency)
    });
    let fault_handle = socket.try_clone()?;
    registry.register("faults", &node_label, move || fault_samples(&fault_handle.fault_counters()));
    Ok(Some(ScrapeServer::spawn(addr, registry, ScrapeOptions::default())?))
}

fn socket_loop(socket: &FaultySocket, events: &SyncSender<(Vec<u8>, SocketAddr)>, shared: &Shared) {
    // 64 KiB: the largest datagram UDP can carry; frames are validated by
    // the codec, not by the read size.
    let mut buf = vec![0u8; 64 * 1024];
    while !shared.stop.load(Ordering::Acquire) {
        match socket.recv_from(&mut buf) {
            Ok((len, from)) => {
                match events.try_send((buf[..len].to_vec(), from)) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        // Bounded queue: the actor is behind. Dropping the
                        // datagram (and counting it) is the backpressure —
                        // the epidemic redundancy absorbs the loss.
                        shared.inbound_dropped.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => {
                // Transient socket errors (e.g. ICMP port-unreachable
                // surfacing as ECONNREFUSED on some platforms) are not
                // fatal for a datagram listener.
            }
        }
    }
}

struct PendingTransfer {
    generation: u32,
    packet: EncodedPacket,
    /// The trace context stamped on the offer, echoed verbatim on the
    /// payload — so the delivered frame carries the true origin send
    /// time (including the offer/feedback round trip, which is real
    /// dissemination latency).
    trace: TraceContext,
    to: SocketAddr,
    born: Instant,
}

/// Adaptive pacing state for one peer: the AIMD budget and the loss and
/// RTT estimates driving it.
struct PeerPacing {
    /// Fractional in-flight budget; its integer part is the cap.
    budget: f64,
    /// EWMA over offer outcomes (feedback = 0, timeout = 1).
    loss_ewma: f64,
    /// EWMA over measured offer→feedback round trips, in seconds; `None`
    /// until the first feedback arrives. Drives the derived pending TTL.
    rtt_ewma: Option<f64>,
    /// Last time any feedback arrived from this peer — the aliveness
    /// signal that separates "lossy link" (raise) from "dead peer" (cut).
    last_feedback: Option<Instant>,
    /// Last multiplicative decrease — cuts fire at most once per pending
    /// TTL so one silent window costs one cut, not a collapse.
    last_cut: Option<Instant>,
}

/// The runtime-agnostic protocol core of one node: every recv, tick and
/// peer-wiring transition lives here, behind a poll-style surface
/// ([`NodeStateMachine::handle_datagram`], [`NodeStateMachine::tick`],
/// [`NodeStateMachine::set_peers`]). The threaded runtime drives it from
/// a dedicated thread ([`NodeStateMachine::run`]); the sharded runtime
/// (`crate::sharded`) drives the same type from reactor callbacks — one
/// protocol implementation, two schedulers.
pub(crate) struct NodeStateMachine {
    socket: FaultySocket,
    session: u64,
    params: SchemeParams,
    options: NodeOptions,
    source: Option<SourceSession>,
    receiver: Option<ReceiverSession>,
    generation_count: u32,
    peers: Vec<SocketAddr>,
    started: bool,
    rng: SmallRng,
    next_transfer: u64,
    pending: HashMap<u64, PendingTransfer>,
    inflight_per_peer: HashMap<SocketAddr, usize>,
    pacing: HashMap<SocketAddr, PeerPacing>,
    peer_done: HashMap<SocketAddr, HashSet<u32>>,
    object_done: HashSet<SocketAddr>,
    announced: HashSet<u32>,
    /// Per-generation recode lineage (relays only): the merged trace of
    /// every payload delivered for that generation — earliest origin
    /// stamp, deepest hop count — so recoded offers advertise the true
    /// critical path of the data they are built from.
    lineage: HashMap<u32, TraceContext>,
    wire: WireCounters,
    shared: Arc<Shared>,
    shutdown: bool,
    tracer: Tracer,
    /// Refresh the shared wire mirror each tick (only when a metrics
    /// endpoint reads it — the mirror costs nothing otherwise).
    publish_live: bool,
}

impl NodeStateMachine {
    pub(crate) fn new(
        socket: FaultySocket,
        config: NodeConfig,
        shared: Arc<Shared>,
    ) -> NodeStateMachine {
        let tracer = Tracer::from_option(config.trace);
        let publish_live = config.options.metrics_bind.is_some() || config.publish_live;
        let (params, source, receiver) = match config.role {
            NodeRole::Source { object, params } => {
                // Completion state for sources is already published by
                // PeerNode::spawn, before this thread existed.
                let source = SourceSession::new(&object, params);
                (params, Some(source), None)
            }
            NodeRole::Peer { manifest } => {
                (manifest.params, None, Some(ReceiverSession::new(manifest)))
            }
        };
        let generation_count = source
            .as_ref()
            .map(|s| s.manifest().generation_count())
            .or_else(|| receiver.as_ref().map(|r| r.manifest().generation_count()))
            .expect("role provides a manifest");
        NodeStateMachine {
            socket,
            session: config.session,
            params,
            options: config.options,
            source,
            receiver,
            generation_count,
            peers: Vec::new(),
            started: false,
            rng: SmallRng::seed_from_u64(config.options.seed),
            next_transfer: 1,
            pending: HashMap::new(),
            inflight_per_peer: HashMap::new(),
            pacing: HashMap::new(),
            peer_done: HashMap::new(),
            object_done: HashSet::new(),
            announced: HashSet::new(),
            lineage: HashMap::new(),
            wire: WireCounters::new(),
            shared,
            shutdown: false,
            tracer,
            publish_live,
        }
    }

    /// Wires the node into the swarm and starts its gossip ticks — the
    /// starting gun, however the state machine is scheduled.
    pub(crate) fn set_peers(&mut self, peers: Vec<SocketAddr>) {
        self.peers = peers;
        self.started = true;
    }

    /// The threaded-runtime adapter: blocks on the socket thread's event
    /// queue, polls the control channel, and self-paces ticks — exactly
    /// the dedicated-thread loop `PeerNode` has always run, now a thin
    /// shell over the same state machine the sharded runtime drives.
    fn run(
        mut self,
        events: &Receiver<(Vec<u8>, SocketAddr)>,
        control: &Receiver<Control>,
    ) -> PeerReport {
        let mut last_tick = Instant::now();
        loop {
            while let Ok(message) = control.try_recv() {
                match message {
                    Control::SetPeers(peers) => self.set_peers(peers),
                    Control::Shutdown => self.shutdown = true,
                }
            }
            if self.shutdown {
                break;
            }

            match events.recv_timeout(self.options.tick) {
                Ok((bytes, from)) => self.handle_datagram(&bytes, from),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }

            if self.started && last_tick.elapsed() >= self.options.tick {
                last_tick = Instant::now();
                self.tick();
            }
        }
        self.into_report()
    }

    /// Final accounting; consumes the state machine.
    pub(crate) fn into_report(mut self) -> PeerReport {
        let (complete, complete_generations, object, decoding, mut recoding) = match self
            .receiver
            .as_mut()
        {
            Some(receiver) => (
                receiver.is_complete(),
                receiver.complete_generations(),
                receiver.reassemble(),
                receiver.decoding_counters(),
                receiver.recoding_counters(),
            ),
            None => {
                (true, self.generation_count as usize, None, OpCounters::new(), OpCounters::new())
            }
        };
        if let Some(source) = &self.source {
            recoding.merge(&source.recoding_counters());
        }
        let mut loss_estimates: Vec<(SocketAddr, f64)> =
            self.pacing.iter().map(|(&peer, pacing)| (peer, pacing.loss_ewma)).collect();
        loss_estimates.sort_by_key(|&(peer, _)| peer);
        let mut rtt_estimates: Vec<(SocketAddr, Duration)> = self
            .pacing
            .iter()
            .filter_map(|(&peer, pacing)| {
                pacing.rtt_ewma.map(|rtt| (peer, Duration::from_secs_f64(rtt.max(0.0))))
            })
            .collect();
        rtt_estimates.sort_by_key(|&(peer, _)| peer);
        self.publish_wire();
        PeerReport {
            wire: self.wire,
            complete,
            complete_generations,
            object,
            decoding,
            recoding,
            faults: self.socket.fault_counters(),
            loss_estimates,
            rtt_estimates,
            link_faults: self.socket.link_counters(),
            events: Vec::new(),
            latency_by_hop: self.shared.latency.snapshot(),
        }
    }

    /// Copies the actor's counters into the shared live mirror — the
    /// scrape endpoint's read side. A no-op unless an endpoint is
    /// attached, so nodes without one never touch the mutex.
    pub(crate) fn publish_wire(&self) {
        if !self.publish_live {
            return;
        }
        if let Ok(mut wire) = self.shared.wire.lock() {
            *wire = self.wire;
        }
        if let Some(receiver) = self.receiver.as_ref() {
            if let Ok(mut ranks) = self.shared.decoder.lock() {
                ranks.clear();
                ranks
                    .extend((0..self.generation_count).map(|g| receiver.useful_received(g) as u64));
            }
        }
    }

    /// Records the outcome of one offer to `peer` — feedback arrived
    /// after `rtt` (whatever the verdict), or `None`: the offer died at
    /// its TTL — updating the loss and RTT estimates and, when adaptive
    /// pacing is on, the AIMD budget.
    ///
    /// The asymmetry is deliberate and opposite to TCP's: loss here is
    /// *erasure*, not congestion. A timed-out offer to a peer that is
    /// still answering others pinned a budget slot down for a whole TTL —
    /// the additive increase hands that slot back, so the live pipeline
    /// stays as deep as the clean-link one (redundancy tracking channel
    /// loss, as in the paper). Only a peer gone entirely silent for a TTL
    /// triggers the multiplicative decrease, throttling offers to the
    /// dead until the floor.
    fn note_outcome(&mut self, peer: SocketAddr, rtt: Option<Duration>) {
        let options = self.options;
        let (floor, ceiling) = options.budget_bounds();
        let base = options.initial_budget();
        let pacing = self.pacing.entry(peer).or_insert_with(|| PeerPacing {
            budget: base,
            loss_ewma: 0.0,
            rtt_ewma: None,
            last_feedback: None,
            last_cut: None,
        });
        let observed = if rtt.is_some() { 0.0 } else { 1.0 };
        pacing.loss_ewma += LOSS_EWMA_ALPHA * (observed - pacing.loss_ewma);
        if let Some(rtt) = rtt {
            let sample = rtt.as_secs_f64();
            pacing.rtt_ewma = Some(match pacing.rtt_ewma {
                Some(ewma) => ewma + RTT_EWMA_ALPHA * (sample - ewma),
                None => sample,
            });
            pacing.last_feedback = Some(Instant::now());
            // A peer cut for silence that answers again recovers: grow
            // back toward the initial budget (never past it — raising
            // above base is reserved for the loss signal), so one
            // transient outage does not pin the peer at the floor for
            // the rest of the session.
            if options.adaptive_pacing && pacing.budget < base {
                let before = pacing.budget as usize;
                pacing.budget = (pacing.budget + 1.0 / pacing.budget.max(1.0)).min(base);
                if pacing.budget as usize > before {
                    self.wire.budget_raises += 1;
                    let budget = pacing.budget as u64;
                    self.tracer.emit(|| TraceEvent::BudgetRaised { peer, budget });
                }
            }
            return;
        }
        if !options.adaptive_pacing {
            return;
        }
        let before = pacing.budget as usize;
        let ttl = options.derived_ttl(pacing.rtt_ewma);
        let alive = pacing.last_feedback.is_some_and(|at| at.elapsed() < ttl);
        if alive {
            // Lossy but live: the lost offer wasted one slot for a full
            // TTL; grow the budget by one to keep the live pipeline deep.
            pacing.budget = (pacing.budget + 1.0).clamp(floor, ceiling);
            if pacing.budget as usize > before {
                self.wire.budget_raises += 1;
                let budget = pacing.budget as u64;
                self.tracer.emit(|| TraceEvent::BudgetRaised { peer, budget });
            }
        } else if pacing.last_cut.is_none_or(|at| at.elapsed() >= ttl) {
            // Silent for a whole TTL: multiplicative decrease, at most
            // once per window, down to the floor.
            pacing.last_cut = Some(Instant::now());
            pacing.budget = (pacing.budget * BUDGET_CUT_FACTOR).clamp(floor, ceiling);
            if (pacing.budget as usize) < before {
                self.wire.budget_cuts += 1;
                let budget = pacing.budget as u64;
                self.tracer.emit(|| TraceEvent::BudgetCut { peer, budget });
            }
        }
    }

    /// The pending TTL currently in force for offers to `peer`: derived
    /// from its RTT estimate when [`NodeOptions::adaptive_ttl`] is on
    /// (fixed [`NodeOptions::pending_ttl`] as the floor and the fallback
    /// before any feedback has been measured).
    fn ttl_for(&self, peer: &SocketAddr) -> Duration {
        self.options.derived_ttl(self.pacing.get(peer).and_then(|pacing| pacing.rtt_ewma))
    }

    /// The in-flight cap currently in force for `peer`.
    fn inflight_cap(&self, peer: &SocketAddr) -> usize {
        if !self.options.adaptive_pacing {
            return self.options.per_peer_inflight;
        }
        match self.pacing.get(peer) {
            Some(pacing) => (pacing.budget as usize).max(1),
            // Not yet tracked: the same clamped initial budget a fresh
            // pacing entry starts with.
            None => self.options.initial_budget() as usize,
        }
    }

    fn send(&mut self, to: SocketAddr, header: &EnvelopeHeader, message: &Message) {
        let bytes = envelope::encode(header, message);
        self.wire.datagrams_sent += 1;
        self.wire.bytes_sent += bytes.len() as u64;
        if let Message::DataPayload { packet, .. } = message {
            self.wire.payload_bytes_sent += packet.payload_size() as u64;
        }
        // Datagram sends are fire-and-forget; a vanished peer must not
        // stall the actor.
        let _ = self.socket.send_to(&bytes, to);
    }

    fn header(&self, kind: MessageKind, generation: u32) -> EnvelopeHeader {
        EnvelopeHeader { kind, scheme: self.params.kind, session: self.session, generation }
    }

    pub(crate) fn handle_datagram(&mut self, bytes: &[u8], from: SocketAddr) {
        // Borrowing decode: the payload of a `DataPayload` stays a view
        // into the datagram buffer until the packet is actually retained
        // below, so frames we drop (corrupt, stale session, no receiver)
        // never copy payload bytes.
        let envelope = match envelope::decode_view(bytes) {
            Ok(envelope) => envelope,
            Err(_) => {
                self.wire.decode_errors += 1;
                return;
            }
        };
        if envelope.header.session != self.session || envelope.header.scheme != self.params.kind {
            // Decoded fine, just not ours (e.g. a stale peer from an
            // earlier run) — keep decode_errors meaning "corrupt bytes".
            self.wire.session_mismatches += 1;
            return;
        }
        self.wire.datagrams_received += 1;
        self.wire.bytes_received += bytes.len() as u64;
        let EnvelopeView { header, message } = envelope;
        match message {
            MessageView::DataHeader { transfer, payload_size, vector, .. } => {
                let generation = header.generation;
                let accept = payload_size == self.params.payload_size
                    && self.receiver.as_ref().is_some_and(|r| r.would_accept(generation, &vector));
                self.send(
                    from,
                    &self.header(
                        if accept {
                            MessageKind::FeedbackAccept
                        } else {
                            MessageKind::FeedbackAbort
                        },
                        generation,
                    ),
                    &Message::Feedback { transfer, accept },
                );
                // Aborts caused by a finished generation also tell the
                // sender to stop offering it altogether. A node with no
                // receiver (a pure source) needs nothing, ever — say so
                // instead of absorbing offers forever.
                if !accept {
                    match self.receiver.as_ref() {
                        Some(receiver) if receiver.generation_complete(generation) => {
                            self.send(
                                from,
                                &self.header(MessageKind::Complete, generation),
                                &Message::Complete,
                            );
                        }
                        None => {
                            self.send(
                                from,
                                &self.header(MessageKind::Complete, GENERATION_OBJECT),
                                &Message::Complete,
                            );
                        }
                        _ => {}
                    }
                }
            }
            MessageView::Feedback { transfer, accept } => {
                // Only the peer the offer went to may decide its fate; a
                // verdict from anyone else (bug or hostility) must not
                // consume the pending transfer.
                if self.pending.get(&transfer).is_none_or(|p| p.to != from) {
                    return; // evicted, duplicate, or misdirected feedback
                }
                let pending = self.pending.remove(&transfer).expect("checked above");
                if let Some(count) = self.inflight_per_peer.get_mut(&pending.to) {
                    *count = count.saturating_sub(1);
                }
                // Either verdict proves the offer/feedback round trip
                // survived the link — a success for pacing purposes, and
                // an RTT sample for the derived TTL.
                let rtt = pending.born.elapsed();
                self.note_outcome(pending.to, Some(rtt));
                self.tracer.emit(|| TraceEvent::FeedbackReceived { peer: from, accept, rtt });
                if accept {
                    self.wire.transfers_delivered += 1;
                    self.send(
                        pending.to,
                        &self.header(MessageKind::DataPayload, pending.generation),
                        &Message::DataPayload {
                            transfer,
                            trace: pending.trace,
                            packet: pending.packet,
                        },
                    );
                } else {
                    self.wire.transfers_aborted += 1;
                }
            }
            MessageView::DataPayload { trace, packet, .. } => {
                let generation = header.generation;
                // The wire-carried trace is the arriving data's whole
                // history: record the true origin→delivery latency at
                // this hop depth, and fold the lineage into what our own
                // recoded offers for this generation will advertise.
                self.shared.latency.record(trace.links(), trace.latency_micros());
                self.lineage
                    .entry(generation)
                    .and_modify(|known| *known = known.absorb(trace))
                    .or_insert(trace);
                let (useful, newly_complete, object_complete) = {
                    let Some(receiver) = self.receiver.as_mut() else { return };
                    let was_complete = receiver.generation_complete(generation);
                    // The single retain point: only here does the borrowed
                    // payload get copied out of the datagram buffer.
                    let useful = receiver.deliver(generation, &packet.into_packet());
                    self.shared
                        .complete_generations
                        .store(receiver.complete_generations(), Ordering::Release);
                    (
                        useful,
                        !was_complete && receiver.generation_complete(generation),
                        receiver.is_complete(),
                    )
                };
                if useful {
                    self.wire.useful_deliveries += 1;
                    self.shared.decoded_rank.fetch_add(1, Ordering::Relaxed);
                }
                self.tracer.emit(|| TraceEvent::PayloadDelivered { generation, useful });
                if newly_complete {
                    self.tracer.emit(|| TraceEvent::GenerationDecoded { generation });
                    self.announce_complete(generation);
                }
                if object_complete && !self.shared.complete.load(Ordering::Acquire) {
                    self.shared.complete.store(true, Ordering::Release);
                    self.tracer.emit(|| TraceEvent::ObjectDecoded);
                    self.announce_complete(GENERATION_OBJECT);
                }
            }
            MessageView::Complete => {
                if header.generation == GENERATION_OBJECT {
                    self.object_done.insert(from);
                } else {
                    self.peer_done.entry(from).or_default().insert(header.generation);
                }
            }
            // The serving handshake (ltnc-serve) rides the same envelope but
            // has no meaning in the gossip protocol.
            MessageView::Request | MessageView::Manifest { .. } | MessageView::Reject => {}
        }
    }

    fn announce_complete(&mut self, generation: u32) {
        if !self.announced.insert(generation) {
            return;
        }
        let header = self.header(MessageKind::Complete, generation);
        for peer in self.peers.clone() {
            self.send(peer, &header, &Message::Complete);
        }
    }

    pub(crate) fn tick(&mut self) {
        self.publish_wire();
        self.evict_stale_pending();
        if self.peers.is_empty() {
            return;
        }
        for _ in 0..self.options.push_rate {
            self.push_once();
        }
    }

    fn evict_stale_pending(&mut self) {
        let expired: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, pending)| pending.born.elapsed() >= self.ttl_for(&pending.to))
            .map(|(&transfer, _)| transfer)
            .collect();
        for transfer in expired {
            let pending = self.pending.remove(&transfer).expect("collected above");
            if let Some(count) = self.inflight_per_peer.get_mut(&pending.to) {
                *count = count.saturating_sub(1);
            }
            self.wire.offer_timeouts += 1;
            self.note_outcome(pending.to, None);
            self.tracer.emit(|| TraceEvent::OfferTimedOut { peer: pending.to });
        }
    }

    fn push_once(&mut self) {
        // Choose a target that still needs something, respecting the
        // per-peer in-flight budget.
        let candidates: Vec<SocketAddr> = self
            .peers
            .iter()
            .copied()
            .filter(|peer| !self.object_done.contains(peer))
            .filter(|peer| {
                self.inflight_per_peer.get(peer).copied().unwrap_or(0) < self.inflight_cap(peer)
            })
            .collect();
        if candidates.is_empty() {
            return;
        }
        let target = candidates[self.rng.gen_range(0..candidates.len())];
        let target_done = self.peer_done.get(&target);
        let needs = |generation: u32| -> bool {
            target_done.is_none_or(|done| !done.contains(&generation))
        };

        let made = if let Some(source) = self.source.as_mut() {
            source.make_packet(&mut self.rng, needs)
        } else if let Some(receiver) = self.receiver.as_mut() {
            // A relay pushes from generations that passed the gate.
            let threshold = ((self.options.aggressiveness * self.params.code_length as f64).ceil()
                as usize)
                .max(1);
            let eligible: Vec<u32> = (0..self.generation_count)
                .filter(|&generation| needs(generation))
                .filter(|&generation| receiver.useful_received(generation) >= threshold)
                .collect();
            if eligible.is_empty() {
                None
            } else {
                let generation = eligible[self.rng.gen_range(0..eligible.len())];
                receiver.make_packet(generation, &mut self.rng).map(|packet| (generation, packet))
            }
        } else {
            None
        };
        let Some((generation, packet)) = made else { return };
        if self.source.is_none() {
            // Relays recode every pushed packet from their partial store.
            self.tracer.emit(|| TraceEvent::RelayRecode { generation });
        }

        // Sources start a fresh lineage (hop 0, stamped now); relays
        // extend the merged lineage of the payloads the recode is built
        // from. A relay racing ahead of its own lineage record (possible
        // only if it never received a payload, which the gate prevents)
        // degrades to a fresh origin stamp.
        let trace = if self.source.is_some() {
            TraceContext::origin_now()
        } else {
            self.lineage
                .get(&generation)
                .copied()
                .map(TraceContext::next_hop)
                .unwrap_or_else(TraceContext::origin_now)
        };
        let transfer = self.next_transfer;
        self.next_transfer += 1;
        self.send(
            target,
            &self.header(MessageKind::DataHeader, generation),
            &Message::DataHeader {
                transfer,
                trace,
                payload_size: packet.payload_size(),
                vector: packet.vector().clone(),
            },
        );
        self.wire.transfers_offered += 1;
        self.tracer.emit(|| TraceEvent::OfferSent { peer: target, generation });
        self.pending.insert(
            transfer,
            PendingTransfer { generation, packet, trace, to: target, born: Instant::now() },
        );
        *self.inflight_per_peer.entry(target).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltnc_scheme::SchemeKind;

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().expect("valid addr")
    }

    fn quick_options(seed: u64) -> NodeOptions {
        NodeOptions { tick: Duration::from_millis(1), seed, ..NodeOptions::default() }
    }

    #[test]
    fn source_reports_complete_immediately() {
        let params = SchemeParams::new(SchemeKind::Ltnc, 8, 4);
        let node = PeerNode::spawn(
            loopback(),
            NodeConfig::new(1, NodeRole::Source { object: vec![7; 64], params }, quick_options(1)),
        )
        .expect("spawn");
        assert!(node.is_complete());
        assert_eq!(node.complete_generations(), 2);
        let report = node.shutdown();
        assert!(report.complete);
        assert!(report.object.is_none(), "sources do not reassemble");
    }

    #[test]
    fn one_source_one_peer_end_to_end() {
        let params = SchemeParams::new(SchemeKind::Rlnc, 8, 4);
        let object: Vec<u8> = (0..100u32).map(|i| (i * 13 % 251) as u8).collect();
        let source = PeerNode::spawn(
            loopback(),
            NodeConfig::new(
                9,
                NodeRole::Source { object: object.clone(), params },
                quick_options(2),
            ),
        )
        .expect("spawn source");
        let manifest = crate::generation::split_object(&object, params).0;
        let peer = PeerNode::spawn(
            loopback(),
            NodeConfig::new(9, NodeRole::Peer { manifest }, quick_options(3)),
        )
        .expect("spawn peer");

        source.set_peers(vec![peer.local_addr()]);
        peer.set_peers(vec![]);

        let deadline = Instant::now() + Duration::from_secs(20);
        while !peer.is_complete() && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert!(peer.is_complete(), "peer did not complete in time");

        let peer_report = peer.shutdown();
        let source_report = source.shutdown();
        assert_eq!(peer_report.object.as_deref(), Some(&object[..]), "bit-exact reconstruction");
        assert!(source_report.wire.transfers_offered > 0);
        assert!(peer_report.wire.useful_deliveries > 0);
    }

    #[test]
    fn feedback_from_the_wrong_peer_is_ignored() {
        // A source offers to peer A (a raw socket we control); an accept
        // forged by peer C must not release the payload — only A's own
        // accept may.
        let params = SchemeParams::new(SchemeKind::Rlnc, 4, 2);
        let object = vec![9u8; 8];
        // One in-flight offer, never evicted: after the first DATA-HEADER
        // the source goes quiet until that transfer is resolved, so the
        // sockets below see a deterministic message sequence.
        let options = NodeOptions {
            push_rate: 1,
            per_peer_inflight: 1,
            pending_ttl: Duration::from_secs(60),
            tick: Duration::from_millis(2),
            seed: 8,
            ..NodeOptions::default()
        };
        let source = PeerNode::spawn(
            loopback(),
            NodeConfig::new(77, NodeRole::Source { object, params }, options),
        )
        .expect("spawn source");

        let a = UdpSocket::bind("127.0.0.1:0").expect("bind A");
        let c = UdpSocket::bind("127.0.0.1:0").expect("bind C");
        a.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        c.set_read_timeout(Some(Duration::from_millis(300))).expect("timeout");
        source.set_peers(vec![a.local_addr().expect("addr")]);

        // Receive one DATA-HEADER offer at A.
        let mut buf = [0u8; 2048];
        let (offer_transfer, offer_generation) = loop {
            let (len, _) = a.recv_from(&mut buf).expect("offer should arrive");
            let env = envelope::decode(&buf[..len]).expect("valid frame");
            if let Message::DataHeader { transfer, .. } = env.message {
                break (transfer, env.header.generation);
            }
        };

        // C forges an accept for A's transfer.
        let forged = envelope::encode(
            &EnvelopeHeader {
                kind: MessageKind::FeedbackAccept,
                scheme: SchemeKind::Rlnc,
                session: 77,
                generation: offer_generation,
            },
            &Message::Feedback { transfer: offer_transfer, accept: true },
        );
        c.send_to(&forged, source.local_addr()).expect("send forged accept");

        // Neither C nor A may receive a payload for it.
        let mut leaked = false;
        for socket in [&c, &a] {
            socket.set_read_timeout(Some(Duration::from_millis(300))).expect("timeout");
            while let Ok((len, _)) = socket.recv_from(&mut buf) {
                if let Ok(env) = envelope::decode(&buf[..len]) {
                    if matches!(env.message, Message::DataPayload { transfer, .. } if transfer == offer_transfer)
                    {
                        leaked = true;
                    }
                }
            }
        }
        assert!(!leaked, "forged accept must not release the payload");

        // A's own accept still works: the pending entry survived the forgery.
        let genuine = envelope::encode(
            &EnvelopeHeader {
                kind: MessageKind::FeedbackAccept,
                scheme: SchemeKind::Rlnc,
                session: 77,
                generation: offer_generation,
            },
            &Message::Feedback { transfer: offer_transfer, accept: true },
        );
        a.send_to(&genuine, source.local_addr()).expect("send genuine accept");
        a.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let delivered = loop {
            let (len, _) = a.recv_from(&mut buf).expect("payload should arrive");
            if let Ok(env) = envelope::decode(&buf[..len]) {
                if let Message::DataPayload { transfer, .. } = env.message {
                    if transfer == offer_transfer {
                        break true;
                    }
                }
            }
        };
        assert!(delivered);
        let _ = source.shutdown();
    }

    /// A source actor driven directly (no threads) to unit-test the
    /// pacing state machine.
    fn pacing_actor(options: NodeOptions) -> NodeStateMachine {
        let params = SchemeParams::new(SchemeKind::Rlnc, 4, 2);
        let socket = crate::faults::FaultySocket::new(
            UdpSocket::bind("127.0.0.1:0").expect("bind"),
            crate::faults::DatagramFaults::clean(1),
        )
        .expect("wrap");
        let shared = Arc::new(Shared::new());
        NodeStateMachine::new(
            socket,
            NodeConfig::new(1, NodeRole::Source { object: vec![1u8; 8], params }, options),
            shared,
        )
    }

    #[test]
    fn budget_recovers_to_base_after_a_silent_period() {
        // Drive the pacing state machine directly: a peer goes silent
        // (timeouts only) and is cut to the floor; when it answers again
        // on a clean link, successes must grow the budget back to the
        // initial value — and not past it.
        let options = NodeOptions {
            pending_ttl: Duration::from_millis(5),
            seed: 13,
            ..NodeOptions::default()
        };
        let mut actor = pacing_actor(options);
        let peer: SocketAddr = "127.0.0.1:9".parse().expect("addr");

        // Dead period: timeouts with no feedback, one cut per TTL window.
        for _ in 0..12 {
            actor.note_outcome(peer, None);
            thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(actor.inflight_cap(&peer), options.inflight_floor.max(1));
        assert!(actor.wire.budget_cuts > 0, "silence must cut");

        // Revival on a clean link: successes alone restore the base cap.
        for _ in 0..64 {
            actor.note_outcome(peer, Some(Duration::from_micros(50)));
        }
        assert_eq!(actor.inflight_cap(&peer), options.per_peer_inflight);
        assert!(actor.wire.budget_raises > 0, "recovery must count as raises");

        // A timeout while the peer is alive grows the budget *past* base.
        actor.note_outcome(peer, None);
        assert_eq!(actor.inflight_cap(&peer), options.per_peer_inflight + 1);
    }

    #[test]
    fn budget_bounds_clamp_the_initial_cap_too() {
        let peer: SocketAddr = "127.0.0.1:9".parse().expect("addr");

        // Initial budget above the ceiling: clamped down, tracked or not.
        let over = NodeOptions {
            per_peer_inflight: 100,
            inflight_ceiling: 8,
            seed: 14,
            ..NodeOptions::default()
        };
        let mut actor = pacing_actor(over);
        assert_eq!(actor.inflight_cap(&peer), 8, "untracked peer clamps to ceiling");
        actor.note_outcome(peer, Some(Duration::from_micros(50)));
        assert_eq!(actor.inflight_cap(&peer), 8, "tracked peer starts clamped");
        assert_eq!(actor.wire.budget_raises, 0, "clamping is not a raise");

        // Initial budget below the floor: clamped up.
        let under = NodeOptions {
            per_peer_inflight: 1,
            inflight_floor: 4,
            seed: 15,
            ..NodeOptions::default()
        };
        let mut actor = pacing_actor(under);
        assert_eq!(actor.inflight_cap(&peer), 4, "untracked peer clamps to floor");
        actor.note_outcome(peer, Some(Duration::from_micros(50)));
        assert_eq!(actor.inflight_cap(&peer), 4, "tracked peer starts clamped");
    }

    #[test]
    fn pending_ttl_derives_from_the_rtt_ewma() {
        let options = NodeOptions {
            pending_ttl: Duration::from_millis(10),
            seed: 16,
            ..NodeOptions::default()
        };
        let mut actor = pacing_actor(options);
        let peer: SocketAddr = "127.0.0.1:9".parse().expect("addr");

        // No feedback measured yet: the fixed TTL is the fallback.
        assert_eq!(actor.ttl_for(&peer), Duration::from_millis(10));

        // Localhost-fast feedback: the floor still applies.
        actor.note_outcome(peer, Some(Duration::from_micros(80)));
        assert_eq!(actor.ttl_for(&peer), Duration::from_millis(10));

        // A slow link: the TTL tracks 4× the RTT EWMA…
        for _ in 0..64 {
            actor.note_outcome(peer, Some(Duration::from_millis(50)));
        }
        let ttl = actor.ttl_for(&peer);
        assert!(ttl > Duration::from_millis(100), "TTL must grow with RTT, got {ttl:?}");
        // …but never past 16× the configured floor.
        for _ in 0..64 {
            actor.note_outcome(peer, Some(Duration::from_secs(30)));
        }
        assert_eq!(actor.ttl_for(&peer), Duration::from_millis(160), "ceiling caps the TTL");

        // The estimate surfaces in the report.
        let report = actor.into_report();
        let (reported_peer, rtt) = report.rtt_estimates.first().expect("rtt tracked");
        assert_eq!(*reported_peer, peer);
        assert!(*rtt > Duration::from_millis(100));
    }

    #[test]
    fn fixed_ttl_when_adaptive_ttl_is_off() {
        let options = NodeOptions {
            pending_ttl: Duration::from_millis(10),
            adaptive_ttl: false,
            seed: 17,
            ..NodeOptions::default()
        };
        let mut actor = pacing_actor(options);
        let peer: SocketAddr = "127.0.0.1:9".parse().expect("addr");
        for _ in 0..32 {
            actor.note_outcome(peer, Some(Duration::from_millis(200)));
        }
        assert_eq!(actor.ttl_for(&peer), Duration::from_millis(10));
    }

    #[test]
    fn shutdown_without_peers_is_clean() {
        let params = SchemeParams::new(SchemeKind::Wc, 4, 2);
        let manifest = crate::generation::split_object(&[1, 2, 3], params).0;
        let node = PeerNode::spawn(
            loopback(),
            NodeConfig::new(5, NodeRole::Peer { manifest }, quick_options(4)),
        )
        .expect("spawn");
        assert!(!node.is_complete());
        let report = node.shutdown();
        assert!(!report.complete);
        assert_eq!(report.wire.datagrams_sent, 0);
    }
}
