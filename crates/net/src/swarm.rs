//! Localhost swarm orchestration: one source, N peers, real UDP.
//!
//! This is the harness both the integration tests and the
//! `file_dissemination_udp` example drive: it spawns every node on an
//! ephemeral `127.0.0.1` port, wires the peer lists, waits for
//! convergence, shuts everything down gracefully and verifies the
//! reconstruction bit for bit.
//!
//! Since PR 5 the harness is *wiring-generic*: [`run_wired_swarm`] takes
//! a [`SwarmWiring`] — per-node push-target sets plus optional
//! per-directed-link inbound fault plans — so arbitrary overlay
//! topologies run through the same code path. The legacy full mesh (the
//! source pushes to every peer; peers gossip among themselves and never
//! push back at the source) is the trivial wiring
//! ([`SwarmWiring::full_mesh`]), and [`run_localhost_swarm`] is exactly
//! that special case. The declarative topology layer lives one crate up,
//! in `ltnc-topo`.
//!
//! With [`SwarmConfig::faults`] set, every node's socket is wrapped in a
//! [`crate::faults::FaultySocket`] whose plans are re-seeded per node
//! from the one template — a whole swarm of lossy, reordering links from
//! a single seed, replayable by fixing that seed. Link-level plans from
//! the wiring are installed on top, shadowing the node default for their
//! origin.

use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ltnc_metrics::{ReactorSnapshot, WireCounters};
use ltnc_scheme::{SchemeKind, SchemeParams};
use ltnc_telemetry::{RingSink, ScrapeOptions, ScrapeServer};

use crate::faults::{DatagramFaultCounters, DatagramFaultPlan, DatagramFaults};
use crate::generation::split_object;
use crate::observe::swarm_registry;
use crate::peer::{NodeConfig, NodeOptions, NodeRole, PeerNode, PeerReport};

/// Parameters of one localhost dissemination run.
#[derive(Debug, Clone)]
pub struct SwarmConfig {
    /// Coding scheme all nodes run.
    pub scheme: SchemeKind,
    /// The object to disseminate.
    pub object: Vec<u8>,
    /// Code length `k` (natives per generation).
    pub code_length: usize,
    /// Payload size `m` in bytes.
    pub payload_size: usize,
    /// Number of receiving peers.
    pub peers: usize,
    /// Per-node tuning.
    pub options: NodeOptions,
    /// Give up after this long.
    pub timeout: Duration,
    /// Session identifier stamped into every envelope.
    pub session: u64,
    /// Datagram fault template applied to every node's socket (`None`
    /// runs clean). Each node gets the template's rates under a seed
    /// re-mixed from its swarm index ([`DatagramFaults::for_node`]), so
    /// one seed describes the whole swarm's loss pattern.
    pub faults: Option<DatagramFaults>,
    /// When set, every node records its [`ltnc_telemetry::TraceEvent`]s
    /// into a bounded [`RingSink`] of this capacity, drained into
    /// [`PeerReport::events`] at shutdown. `None` (the default) installs
    /// no sink — every trace hook stays a no-op.
    pub trace_capacity: Option<usize>,
    /// Which scheduler runs the nodes. Both runtimes drive the same
    /// protocol state machine, harness, fault plans and counters; see
    /// [`SwarmRuntime`] for the trade-off.
    pub runtime: SwarmRuntime,
    /// When set, the whole swarm serves *one* aggregated scrape endpoint
    /// bound here (`/metrics`, `/metrics.json`, and `/flight` when the
    /// flight recorder is on): rolled-up wire counters, merged
    /// hop-latency histograms, decoder-progress gauges, and — on the
    /// sharded runtime — per-shard `reactor` scheduler families. The
    /// scalable alternative to a [`NodeOptions::metrics_bind`] listener
    /// per node. Port 0 picks a free port. `None` (the default) serves
    /// nothing.
    pub metrics_bind: Option<SocketAddr>,
    /// When set, the sharded runtime runs a stall watchdog and keeps a
    /// bounded per-shard flight ring of scheduler trace events, dumping
    /// a JSON post-mortem on stall, shutdown timeout, or on demand (the
    /// endpoint's `/flight` route). `None` (the default) records
    /// nothing. Ignored by the threaded runtime, which has no shards to
    /// watch.
    pub flight_recorder: Option<FlightRecorder>,
}

/// Configuration of the sharded runtime's flight recorder
/// ([`SwarmConfig::flight_recorder`]).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    /// Capacity of each shard's bounded event ring (oldest events are
    /// dropped first; the drop count is part of every dump).
    pub capacity: usize,
    /// How long the swarm may go without any decoding progress (no
    /// receiver gaining rank or completing a generation) before the
    /// watchdog declares a stall and cuts a dump. Checked on the
    /// driver's completion-poll cadence.
    pub stall_window: Duration,
    /// When set, stall and shutdown-timeout dumps are also written to
    /// this file (best effort — I/O errors are swallowed; the dump is
    /// always in [`SwarmReport::flight_dump`] regardless).
    pub dump_path: Option<PathBuf>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder { capacity: 256, stall_window: Duration::from_secs(10), dump_path: None }
    }
}

/// Which scheduler runs a swarm's node state machines.
///
/// Both runtimes share one protocol implementation
/// (`crate::peer::NodeStateMachine`); the choice is purely how it gets
/// scheduled, so reports are comparable across runtimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwarmRuntime {
    /// Two dedicated OS threads per node (blocking socket reader +
    /// actor) — the original runtime, comfortable into the hundreds of
    /// in-process nodes.
    #[default]
    Threaded,
    /// The `ltnc-reactor` epoll runtime: every node multiplexed onto
    /// `workers` poll-driven worker threads — what makes 1000-node
    /// swarms practical on one machine.
    Sharded {
        /// Worker threads to shard the nodes across (clamped to ≥ 1).
        workers: usize,
    },
}

impl SwarmConfig {
    /// A small, fast configuration for tests and demos.
    #[must_use]
    pub fn quick(scheme: SchemeKind, object: Vec<u8>) -> Self {
        SwarmConfig {
            scheme,
            object,
            code_length: 16,
            payload_size: 32,
            peers: 8,
            options: NodeOptions::default(),
            timeout: Duration::from_secs(30),
            session: 0x5E55_1011,
            faults: None,
            trace_capacity: None,
            runtime: SwarmRuntime::Threaded,
            metrics_bind: None,
            flight_recorder: None,
        }
    }
}

/// How the nodes of a swarm are wired together.
///
/// Node 0 is always the source; peers are `1..=peers`. The wiring names,
/// per node, the nodes it *pushes* to (offers transfers to — receiving
/// is governed by the sender's set, not the receiver's), plus optional
/// per-directed-link inbound fault plans installed once every node's
/// ephemeral address is known.
#[derive(Debug, Clone)]
pub struct SwarmWiring {
    /// `push_targets[i]` = swarm indices node `i` offers transfers to.
    /// Must have one entry per node (`peers + 1`), no self-loops, all
    /// indices in range.
    pub push_targets: Vec<Vec<usize>>,
    /// Per-directed-link fault plans `(from, to, plan)`: installed on
    /// `to`'s socket keyed by `from`'s address
    /// ([`PeerNode::set_link_faults`]), shadowing `to`'s default inbound
    /// plan for datagrams from `from` — and tallied per link in
    /// [`PeerReport::link_faults`].
    pub link_faults: Vec<(usize, usize, DatagramFaultPlan)>,
}

impl SwarmWiring {
    /// The legacy full mesh: the source pushes to every peer, every peer
    /// pushes to every other peer (and never back at the all-knowing
    /// source).
    #[must_use]
    pub fn full_mesh(peers: usize) -> SwarmWiring {
        let mut push_targets = Vec::with_capacity(peers + 1);
        push_targets.push((1..=peers).collect());
        for i in 1..=peers {
            push_targets.push((1..=peers).filter(|&j| j != i).collect());
        }
        SwarmWiring { push_targets, link_faults: Vec::new() }
    }

    /// Panics with a clear message when the wiring is malformed for a
    /// swarm of `nodes` total nodes.
    fn validate(&self, nodes: usize) {
        assert_eq!(
            self.push_targets.len(),
            nodes,
            "wiring must name push targets for every node (source included)"
        );
        for (i, targets) in self.push_targets.iter().enumerate() {
            for &j in targets {
                assert!(j < nodes, "node {i} pushes to out-of-range node {j}");
                assert_ne!(i, j, "node {i} must not push to itself");
            }
        }
        for &(from, to, _) in &self.link_faults {
            assert!(from < nodes && to < nodes, "link fault ({from}→{to}) out of range");
            assert_ne!(from, to, "link fault ({from}→{to}) is a self-loop");
        }
    }
}

/// Outcome of a swarm run.
#[derive(Debug)]
pub struct SwarmReport {
    /// Scheme that ran.
    pub scheme: SchemeKind,
    /// Whether every peer decoded every generation before the timeout.
    pub converged: bool,
    /// Wall-clock time until convergence (or the timeout).
    pub elapsed: Duration,
    /// Peers that completed.
    pub peers_complete: usize,
    /// Whether every completed peer reassembled the object bit for bit.
    pub bit_exact: bool,
    /// Number of generations the object spanned.
    pub generations: u32,
    /// Wire counters summed over the source and all peers.
    pub total_wire: WireCounters,
    /// The source's full report (wire counters, recoding cost, injected
    /// faults and per-link tallies); each peer's is in
    /// [`SwarmReport::peer_reports`].
    pub source_report: PeerReport,
    /// Injected-fault totals summed over every node's socket (all zero
    /// for a clean run).
    pub total_faults: DatagramFaultCounters,
    /// Every node's bound address, swarm-indexed (0 = source) — what
    /// maps the address-keyed per-link tallies back to nodes.
    pub node_addrs: Vec<SocketAddr>,
    /// Per-peer reports (source excluded; swarm node `i` is
    /// `peer_reports[i - 1]`).
    pub peer_reports: Vec<PeerReport>,
    /// Final per-shard reactor scheduler snapshots, shard-indexed —
    /// populated only by the sharded runtime when
    /// [`SwarmConfig::metrics_bind`] or
    /// [`SwarmConfig::flight_recorder`] asked for instrumentation
    /// (empty otherwise: the observer seam stays uninstalled and the
    /// hot loops take no clock readings).
    pub reactor: Vec<ReactorSnapshot>,
    /// The last flight-recorder post-mortem the run cut (stall or
    /// shutdown timeout), if any — the same JSON document a live
    /// `/flight` scrape serves.
    pub flight_dump: Option<String>,
}

impl SwarmReport {
    /// Injected-fault counters per node, swarm-indexed (0 = source) —
    /// the per-node attribution the aggregate
    /// [`SwarmReport::total_faults`] flattens away.
    #[must_use]
    pub fn node_faults(&self) -> Vec<DatagramFaultCounters> {
        std::iter::once(self.source_report.faults)
            .chain(self.peer_reports.iter().map(|report| report.faults))
            .collect()
    }

    /// Every node's full report, swarm-indexed (0 = source).
    pub fn node_reports(&self) -> impl Iterator<Item = &PeerReport> + '_ {
        std::iter::once(&self.source_report).chain(self.peer_reports.iter())
    }
}

/// Runs a full dissemination on localhost UDP with the legacy full-mesh
/// wiring and returns the report.
///
/// # Errors
///
/// Propagates socket setup failures; protocol-level problems surface as
/// `converged = false` / `bit_exact = false` instead of errors.
///
/// # Panics
///
/// Panics when `config.peers == 0`.
pub fn run_localhost_swarm(config: &SwarmConfig) -> io::Result<SwarmReport> {
    run_wired_swarm(config, &SwarmWiring::full_mesh(config.peers))
}

/// Runs a full dissemination on localhost UDP under an arbitrary
/// [`SwarmWiring`] — the general harness every overlay topology lowers
/// to — and returns the report.
///
/// # Errors
///
/// Propagates socket setup failures; protocol-level problems surface as
/// `converged = false` / `bit_exact = false` instead of errors.
///
/// # Panics
///
/// Panics when `config.peers == 0` or the wiring is malformed (wrong
/// node count, out-of-range indices, self-loops).
pub fn run_wired_swarm(config: &SwarmConfig, wiring: &SwarmWiring) -> io::Result<SwarmReport> {
    assert!(config.peers > 0, "a swarm needs at least one peer");
    let node_count = config.peers + 1;
    wiring.validate(node_count);
    if let SwarmRuntime::Sharded { workers } = config.runtime {
        return crate::sharded::run_sharded(config, wiring, workers.max(1));
    }
    let params = SchemeParams::new(config.scheme, config.code_length, config.payload_size);
    let manifest = split_object(&config.object, params).0;
    let bind: SocketAddr = "127.0.0.1:0".parse().expect("valid address");

    // Node 0 is the source; peers are 1..=N. Each node re-mixes the fault
    // template's seed with its index so links fail independently.
    let node_faults = |index: u64| match &config.faults {
        Some(template) => template.for_node(index),
        None => DatagramFaults::clean(config.options.seed ^ index),
    };

    let mut nodes: Vec<PeerNode> = Vec::with_capacity(node_count);
    // One bounded ring per node when tracing is on; drained into each
    // node's report after shutdown.
    let mut sinks: Vec<Option<Arc<RingSink>>> = Vec::with_capacity(node_count);
    for i in 0..node_count {
        let role = if i == 0 {
            NodeRole::Source { object: config.object.clone(), params }
        } else {
            NodeRole::Peer { manifest }
        };
        let seed = if i == 0 {
            config.options.seed ^ 0xD15E
        } else {
            config.options.seed.wrapping_add(i as u64)
        };
        let sink = config.trace_capacity.map(|capacity| Arc::new(RingSink::new(capacity)));
        sinks.push(sink.clone());
        let mut node_config =
            NodeConfig::new(config.session, role, NodeOptions { seed, ..config.options });
        node_config.trace = sink.map(|sink| sink as _);
        // The aggregated endpoint reads every node's live mirror, so
        // the per-tick refresh must run even without per-node endpoints.
        node_config.publish_live = config.metrics_bind.is_some();
        let spawned = PeerNode::spawn_faulty(bind, node_config, node_faults(i as u64));
        match spawned {
            Ok(node) => nodes.push(node),
            Err(e) => {
                // Tear down everything already running: leaked nodes would
                // keep their socket and actor threads spinning for the
                // rest of the process.
                for node in nodes {
                    let _ = node.shutdown();
                }
                return Err(e);
            }
        }
    }

    let node_addrs: Vec<SocketAddr> = nodes.iter().map(PeerNode::local_addr).collect();
    // Link plans go in before any node starts gossiping (set_peers is the
    // starting gun): a plan landing after the first offers would let
    // early datagrams cross the link un-faulted, breaking both partition
    // wirings and the replay-by-seed guarantee.
    for &(from, to, plan) in &wiring.link_faults {
        nodes[to].set_link_faults(node_addrs[from], plan);
    }
    for (i, node) in nodes.iter().enumerate() {
        let targets: Vec<SocketAddr> =
            wiring.push_targets[i].iter().map(|&j| node_addrs[j]).collect();
        node.set_peers(targets);
    }

    // The swarm-wide aggregated endpoint (the sharded runtime spawns its
    // own richer one, with reactor families and the flight route).
    let scrape = match config.metrics_bind {
        Some(addr) => {
            let completion: Vec<_> = nodes.iter().map(PeerNode::shared).collect();
            let registry = Arc::new(swarm_registry(&completion, manifest.generation_count(), None));
            match ScrapeServer::spawn(addr, registry, ScrapeOptions::default()) {
                Ok(scrape) => Some(scrape),
                Err(e) => {
                    for node in nodes {
                        let _ = node.shutdown();
                    }
                    return Err(e);
                }
            }
        }
        None => None,
    };

    let started = Instant::now();
    let deadline = started + config.timeout;
    while nodes[1..].iter().any(|p| !p.is_complete()) && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(5));
    }
    let elapsed = started.elapsed();
    if let Some(scrape) = scrape {
        scrape.shutdown();
    }

    let reports = nodes
        .into_iter()
        .zip(sinks)
        .map(|(node, sink)| {
            let mut report = node.shutdown();
            if let Some(sink) = sink {
                report.events = sink.drain();
            }
            report
        })
        .collect::<Vec<PeerReport>>();

    Ok(assemble_report(config, manifest.generation_count(), elapsed, node_addrs, reports))
}

/// Folds the per-node reports of a finished run into the aggregate
/// [`SwarmReport`]. Shared by both runtimes so converged / bit-exact /
/// total-counter semantics are computed identically, whatever scheduler
/// produced the reports. `reports[0]` is the source.
pub(crate) fn assemble_report(
    config: &SwarmConfig,
    generations: u32,
    elapsed: Duration,
    node_addrs: Vec<SocketAddr>,
    reports: Vec<PeerReport>,
) -> SwarmReport {
    let mut reports = reports.into_iter();
    let source_report = reports.next().expect("the source exists");
    let peer_reports: Vec<PeerReport> = reports.collect();

    let peers_complete = peer_reports.iter().filter(|r| r.complete).count();
    let converged = peers_complete == config.peers;
    let bit_exact = peer_reports
        .iter()
        .filter(|r| r.complete)
        .all(|r| r.object.as_deref() == Some(&config.object[..]));

    let mut total_wire = source_report.wire;
    let mut total_faults = source_report.faults;
    for report in &peer_reports {
        total_wire.merge(&report.wire);
        total_faults.merge(&report.faults);
    }

    SwarmReport {
        scheme: config.scheme,
        converged,
        elapsed,
        peers_complete,
        bit_exact,
        generations,
        total_wire,
        source_report,
        total_faults,
        node_addrs,
        peer_reports,
        reactor: Vec::new(),
        flight_dump: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::DatagramFaultPlan;

    #[test]
    fn two_peer_swarm_converges_quickly() {
        let object: Vec<u8> = (0..777u32).map(|i| (i % 256) as u8).collect();
        let mut config = SwarmConfig::quick(SchemeKind::Ltnc, object);
        config.peers = 2;
        config.code_length = 8;
        config.payload_size = 16;
        let report = run_localhost_swarm(&config).expect("swarm runs");
        assert!(report.converged, "swarm did not converge: {report:?}");
        assert!(report.bit_exact);
        assert_eq!(report.peers_complete, 2);
        assert!(report.total_wire.transfers_delivered > 0);
        assert_eq!(report.node_addrs.len(), 3);
        assert_eq!(report.node_faults().len(), 3);
    }

    #[test]
    fn full_mesh_wiring_matches_the_legacy_shape() {
        let wiring = SwarmWiring::full_mesh(3);
        assert_eq!(wiring.push_targets[0], vec![1, 2, 3], "source pushes to every peer");
        assert_eq!(wiring.push_targets[1], vec![2, 3], "peers skip themselves and the source");
        assert_eq!(wiring.push_targets[2], vec![1, 3]);
        assert_eq!(wiring.push_targets[3], vec![1, 2]);
        assert!(wiring.link_faults.is_empty());
    }

    #[test]
    fn wired_swarm_respects_a_line_and_attributes_link_faults() {
        // A 2-hop line S → P1 → P2 with a 20%-drop plan on the relay →
        // far-peer link — the only path the far peer has. The run must
        // still converge through the lossy relay hop, and the link tally
        // must land on the far peer's report, keyed by the relay.
        let object: Vec<u8> = (0..600u32).map(|i| (i * 31 % 256) as u8).collect();
        let mut config = SwarmConfig::quick(SchemeKind::Rlnc, object);
        config.peers = 2;
        config.code_length = 8;
        config.payload_size = 16;
        let wiring = SwarmWiring {
            push_targets: vec![vec![1], vec![2], vec![1]],
            link_faults: vec![(1, 2, DatagramFaultPlan::clean(77).drop_rate(0.2))],
        };
        let report = run_wired_swarm(&config, &wiring).expect("swarm runs");
        assert!(report.converged, "line swarm did not converge: {report:?}");
        assert!(report.bit_exact);
        // The far peer (swarm node 2) carries the per-link tally, keyed
        // by the relay's address.
        let far = &report.peer_reports[1];
        assert_eq!(far.link_faults.len(), 1);
        assert_eq!(far.link_faults[0].0, report.node_addrs[1]);
        assert!(far.link_faults[0].1.dropped_in > 0, "20% link loss must drop something");
        // And the relay actually relayed: it recoded packets it never
        // originated.
        assert!(report.peer_reports[0].recoding.total_ops() > 0, "relay must recode");
    }

    #[test]
    #[should_panic(expected = "push targets for every node")]
    fn malformed_wiring_is_rejected() {
        let object = vec![1u8; 64];
        let mut config = SwarmConfig::quick(SchemeKind::Wc, object);
        config.peers = 2;
        let wiring = SwarmWiring { push_targets: vec![vec![1]], link_faults: Vec::new() };
        let _ = run_wired_swarm(&config, &wiring);
    }
}
