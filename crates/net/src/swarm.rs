//! Localhost swarm orchestration: one source, N peers, real UDP.
//!
//! This is the harness both the integration tests and the
//! `file_dissemination_udp` example drive: it spawns every node on an
//! ephemeral `127.0.0.1` port, wires the peer lists (the source pushes to
//! every peer; peers gossip among themselves and never push back at the
//! source), waits for convergence, shuts everything down gracefully and
//! verifies the reconstruction bit for bit.
//!
//! With [`SwarmConfig::faults`] set, every node's socket is wrapped in a
//! [`crate::faults::FaultySocket`] whose plans are re-seeded per node
//! from the one template — a whole swarm of lossy, reordering links from
//! a single seed, replayable by fixing that seed.

use std::io;
use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};

use ltnc_metrics::WireCounters;
use ltnc_scheme::{SchemeKind, SchemeParams};

use crate::faults::{DatagramFaultCounters, DatagramFaults};
use crate::generation::split_object;
use crate::peer::{NodeConfig, NodeOptions, NodeRole, PeerNode, PeerReport};

/// Parameters of one localhost dissemination run.
#[derive(Debug, Clone)]
pub struct SwarmConfig {
    /// Coding scheme all nodes run.
    pub scheme: SchemeKind,
    /// The object to disseminate.
    pub object: Vec<u8>,
    /// Code length `k` (natives per generation).
    pub code_length: usize,
    /// Payload size `m` in bytes.
    pub payload_size: usize,
    /// Number of receiving peers.
    pub peers: usize,
    /// Per-node tuning.
    pub options: NodeOptions,
    /// Give up after this long.
    pub timeout: Duration,
    /// Session identifier stamped into every envelope.
    pub session: u64,
    /// Datagram fault template applied to every node's socket (`None`
    /// runs clean). Each node gets the template's rates under a seed
    /// re-mixed from its swarm index ([`DatagramFaults::for_node`]), so
    /// one seed describes the whole swarm's loss pattern.
    pub faults: Option<DatagramFaults>,
}

impl SwarmConfig {
    /// A small, fast configuration for tests and demos.
    #[must_use]
    pub fn quick(scheme: SchemeKind, object: Vec<u8>) -> Self {
        SwarmConfig {
            scheme,
            object,
            code_length: 16,
            payload_size: 32,
            peers: 8,
            options: NodeOptions::default(),
            timeout: Duration::from_secs(30),
            session: 0x5E55_1011,
            faults: None,
        }
    }
}

/// Outcome of a swarm run.
#[derive(Debug)]
pub struct SwarmReport {
    /// Scheme that ran.
    pub scheme: SchemeKind,
    /// Whether every peer decoded every generation before the timeout.
    pub converged: bool,
    /// Wall-clock time until convergence (or the timeout).
    pub elapsed: Duration,
    /// Peers that completed.
    pub peers_complete: usize,
    /// Whether every completed peer reassembled the object bit for bit.
    pub bit_exact: bool,
    /// Number of generations the object spanned.
    pub generations: u32,
    /// Wire counters summed over the source and all peers.
    pub total_wire: WireCounters,
    /// The source's own wire counters.
    pub source_wire: WireCounters,
    /// Injected-fault totals summed over every node's socket (all zero
    /// for a clean run).
    pub total_faults: DatagramFaultCounters,
    /// Per-peer reports (source excluded).
    pub peer_reports: Vec<PeerReport>,
}

/// Runs a full dissemination on localhost UDP and returns the report.
///
/// # Errors
///
/// Propagates socket setup failures; protocol-level problems surface as
/// `converged = false` / `bit_exact = false` instead of errors.
///
/// # Panics
///
/// Panics when `config.peers == 0`.
pub fn run_localhost_swarm(config: &SwarmConfig) -> io::Result<SwarmReport> {
    assert!(config.peers > 0, "a swarm needs at least one peer");
    let params = SchemeParams::new(config.scheme, config.code_length, config.payload_size);
    let manifest = split_object(&config.object, params).0;
    let bind: SocketAddr = "127.0.0.1:0".parse().expect("valid address");

    // Node 0 is the source; peers are 1..=N. Each node re-mixes the fault
    // template's seed with its index so links fail independently.
    let node_faults = |index: u64| match &config.faults {
        Some(template) => template.for_node(index),
        None => DatagramFaults::clean(config.options.seed ^ index),
    };

    let source = PeerNode::spawn_faulty(
        bind,
        NodeConfig {
            session: config.session,
            role: NodeRole::Source { object: config.object.clone(), params },
            options: NodeOptions { seed: config.options.seed ^ 0xD15E, ..config.options },
        },
        node_faults(0),
    )?;

    let mut peers = Vec::with_capacity(config.peers);
    for i in 0..config.peers {
        let spawned = PeerNode::spawn_faulty(
            bind,
            NodeConfig {
                session: config.session,
                role: NodeRole::Peer { manifest },
                options: NodeOptions {
                    seed: config.options.seed.wrapping_add(1 + i as u64),
                    ..config.options
                },
            },
            node_faults(1 + i as u64),
        );
        match spawned {
            Ok(peer) => peers.push(peer),
            Err(e) => {
                // Tear down everything already running: leaked nodes would
                // keep their socket and actor threads spinning for the
                // rest of the process.
                let _ = source.shutdown();
                for peer in peers {
                    let _ = peer.shutdown();
                }
                return Err(e);
            }
        }
    }

    let peer_addrs: Vec<SocketAddr> = peers.iter().map(PeerNode::local_addr).collect();
    // The source pushes to every peer; each peer gossips with the others
    // (and has no reason to push toward the all-knowing source).
    source.set_peers(peer_addrs.clone());
    for (i, peer) in peers.iter().enumerate() {
        let others: Vec<SocketAddr> = peer_addrs
            .iter()
            .copied()
            .enumerate()
            .filter_map(|(j, addr)| (j != i).then_some(addr))
            .collect();
        peer.set_peers(others);
    }

    let started = Instant::now();
    let deadline = started + config.timeout;
    while peers.iter().any(|p| !p.is_complete()) && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(5));
    }
    let elapsed = started.elapsed();

    let source_report = source.shutdown();
    let peer_reports: Vec<PeerReport> = peers.into_iter().map(PeerNode::shutdown).collect();

    let peers_complete = peer_reports.iter().filter(|r| r.complete).count();
    let converged = peers_complete == config.peers;
    let bit_exact = peer_reports
        .iter()
        .filter(|r| r.complete)
        .all(|r| r.object.as_deref() == Some(&config.object[..]));

    let mut total_wire = source_report.wire;
    let mut total_faults = source_report.faults;
    for report in &peer_reports {
        total_wire.merge(&report.wire);
        total_faults.merge(&report.faults);
    }

    Ok(SwarmReport {
        scheme: config.scheme,
        converged,
        elapsed,
        peers_complete,
        bit_exact,
        generations: manifest.generation_count(),
        total_wire,
        source_wire: source_report.wire,
        total_faults,
        peer_reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_peer_swarm_converges_quickly() {
        let object: Vec<u8> = (0..777u32).map(|i| (i % 256) as u8).collect();
        let mut config = SwarmConfig::quick(SchemeKind::Ltnc, object);
        config.peers = 2;
        config.code_length = 8;
        config.payload_size = 16;
        let report = run_localhost_swarm(&config).expect("swarm runs");
        assert!(report.converged, "swarm did not converge: {report:?}");
        assert!(report.bit_exact);
        assert_eq!(report.peers_complete, 2);
        assert!(report.total_wire.transfers_delivered > 0);
    }
}
