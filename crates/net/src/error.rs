use core::fmt;

use ltnc_gf2::Gf2Error;

/// Errors of the wire codec and session layer.
///
/// Decoding never panics: every malformed, truncated or oversized input maps
/// to a variant here, because on a real socket *every* byte pattern will
/// eventually arrive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The buffer ends before the structure is complete. `needed` is the
    /// total length required (so an incremental caller knows how much more
    /// to read); `have` is what was supplied.
    Truncated {
        /// Bytes available.
        have: usize,
        /// Total bytes required to make progress.
        needed: usize,
    },
    /// The frame does not start with the `LTNC` magic.
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown message kind byte.
    BadKind(u8),
    /// Unknown scheme identifier byte.
    BadScheme(u8),
    /// Advertised dimensions exceed the decoder's safety limits (a corrupt
    /// or hostile header must not drive allocation).
    FrameTooLarge {
        /// Advertised code length `k`.
        code_length: usize,
        /// Advertised payload size `m`.
        payload_size: usize,
    },
    /// The frame decoded but left unconsumed trailing bytes.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// The inner `gf2` wire frame was malformed.
    Wire(Gf2Error),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Truncated { have, needed } => {
                write!(f, "truncated frame: have {have} bytes, need {needed}")
            }
            NetError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            NetError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            NetError::BadKind(k) => write!(f, "unknown message kind {k}"),
            NetError::BadScheme(s) => write!(f, "unknown scheme id {s}"),
            NetError::FrameTooLarge { code_length, payload_size } => {
                write!(f, "frame dimensions too large (k = {code_length}, m = {payload_size})")
            }
            NetError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after frame")
            }
            NetError::Wire(e) => write!(f, "gf2 wire error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<Gf2Error> for NetError {
    fn from(e: Gf2Error) -> Self {
        NetError::Wire(e)
    }
}
