//! Datagram transport and session layer for LT network codes.
//!
//! The simulator (`ltnc-sim`) evaluates the paper's schemes in
//! synchronized rounds inside one process. This crate runs the *same*
//! [`ltnc_scheme::Scheme`] implementations over real UDP sockets between
//! OS threads, making encoder → wire → socket → recoder → decoder an
//! end-to-end system rather than a simulation:
//!
//! * [`envelope`] — the versioned wire protocol: a 19-byte envelope
//!   (magic, version, kind, scheme, session, generation) framing the
//!   `gf2::wire` packet format, with a pure sans-io codec whose
//!   header-first incremental decode carries the paper's binary feedback
//!   channel onto real sockets (`DATA-HEADER` offer →
//!   `FEEDBACK-ACCEPT`/`ABORT` → `DATA-PAYLOAD`; aborted transfers never
//!   cost payload bytes);
//! * [`generation`] — chunking of arbitrarily large objects into
//!   generations of `k` payloads, per-generation decode state, push
//!   scheduling and bit-exact reassembly (now the transport-neutral
//!   [`ltnc_session`] crate, re-exported here under its historical paths
//!   so UDP gossip and the TCP serving path of `ltnc-serve` share one
//!   implementation);
//! * [`stream`] — the byte-stream binding of the envelope codec: a
//!   [`stream::FrameReassembler`] that turns arbitrarily chunked TCP
//!   reads back into complete envelopes via [`envelope::required_len`],
//!   tolerant of hostile input;
//! * [`faults`] — seeded, deterministic fault injection for both
//!   transports: [`faults::FaultyStream`] over any `Read + Write` plus a
//!   TCP [`faults::FaultProxy`] (drops, delays, truncation and
//!   disconnect-at-byte-K), and [`faults::FaultySocket`] over UDP
//!   (whole-datagram drop/duplicate/reorder/delay per direction), so
//!   every transport test can run under adverse conditions reproducibly;
//! * [`peer`] — the [`peer::PeerNode`] actor: bounded-queue backpressure,
//!   loss-adaptive per-peer in-flight budgets (AIMD over feedback
//!   arrivals and offer timeouts), the aggressiveness gate for relays,
//!   and graceful shutdown with full wire-level accounting
//!   ([`ltnc_metrics::WireCounters`]);
//! * [`swarm`] — one-call localhost orchestration used by the integration
//!   tests and the `file_dissemination_udp` example, optionally running
//!   every node behind seeded datagram faults
//!   ([`swarm::SwarmConfig::faults`]). The harness is wiring-generic
//!   ([`swarm::run_wired_swarm`] over a [`swarm::SwarmWiring`] with
//!   per-directed-link fault plans); the legacy full mesh is the trivial
//!   wiring, and the declarative multi-hop topology layer on top lives
//!   in the `ltnc-topo` crate.
//!
//! # Example
//!
//! ```
//! use ltnc_net::swarm::{run_localhost_swarm, SwarmConfig};
//! use ltnc_scheme::SchemeKind;
//!
//! let object: Vec<u8> = (0..500u32).map(|i| (i * 7 % 256) as u8).collect();
//! let mut config = SwarmConfig::quick(SchemeKind::Rlnc, object);
//! config.peers = 2;
//! config.code_length = 8;
//! let report = run_localhost_swarm(&config).unwrap();
//! assert!(report.converged && report.bit_exact);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod envelope;
mod error;
pub mod faults;
mod observe;
pub mod peer;
mod sharded;
pub mod stream;
pub mod swarm;

// Backward-compatible re-export: `ltnc_net::generation::…` keeps working
// even though the implementation moved to the transport-neutral
// `ltnc-session` crate.
pub use ltnc_session::generation;

pub use envelope::{Envelope, EnvelopeHeader, Message, MessageKind};
pub use error::NetError;
pub use faults::{
    DatagramFaultCounters, DatagramFaultPlan, DatagramFaults, FaultPlan, FaultProxy, FaultySocket,
    FaultyStream,
};
pub use ltnc_session::{split_object, ObjectManifest, ReceiverSession, SourceSession};
pub use peer::{NodeConfig, NodeOptions, NodeRole, PeerNode, PeerReport};
pub use stream::FrameReassembler;
pub use swarm::{
    run_localhost_swarm, run_wired_swarm, FlightRecorder, SwarmConfig, SwarmReport, SwarmRuntime,
    SwarmWiring,
};
