//! Byte-stream binding of the envelope codec.
//!
//! UDP preserves message boundaries, so the datagram path decodes each
//! buffer as exactly one frame. A TCP (or QUIC) connection delivers an
//! undifferentiated byte stream chopped at arbitrary points; this module
//! reconstructs frame boundaries from it. The envelope format needs no
//! extra length prefix for that: [`crate::envelope::required_len`] sizes a
//! frame incrementally from any prefix, so the reassembler just
//! accumulates bytes until a complete frame is present, decodes it, and
//! carries the remainder forward.
//!
//! Hostile input is survivable by construction: malformed bytes surface
//! as a [`NetError`] (the caller should drop the connection — framing is
//! unrecoverable once the stream is corrupt), advertised dimensions are
//! capped by the codec before any allocation happens, and nothing panics.

use crate::envelope::{self, Envelope, EnvelopeView};
use crate::NetError;

/// Largest complete frame the reassembler will buffer.
///
/// Slightly above the worst legal frame (envelope header, transfer id,
/// `gf2` wire header with a [`envelope::MAX_CODE_LENGTH`] bitmap, and a
/// [`envelope::MAX_PAYLOAD_SIZE`] payload) so every frame the codec can
/// legally produce fits, while a hostile length cannot grow the buffer
/// without bound.
pub const MAX_FRAME_BYTES: usize = envelope::ENVELOPE_HEADER_BYTES
    + 8
    + 16
    + envelope::MAX_CODE_LENGTH / 8
    + envelope::MAX_PAYLOAD_SIZE;

/// Incremental frame reassembly over a byte stream.
///
/// Feed raw reads in with [`FrameReassembler::extend`], then drain
/// complete envelopes with [`FrameReassembler::next_frame`] until it
/// returns `Ok(None)` (more bytes needed). Any `Err` is fatal for the
/// stream.
///
/// ```
/// use ltnc_net::envelope::{self, EnvelopeHeader, Message, MessageKind};
/// use ltnc_net::stream::FrameReassembler;
/// use ltnc_scheme::SchemeKind;
///
/// let header = EnvelopeHeader {
///     kind: MessageKind::Complete,
///     scheme: SchemeKind::Ltnc,
///     session: 7,
///     generation: 0,
/// };
/// let frame = envelope::encode(&header, &Message::Complete);
/// let mut reassembler = FrameReassembler::new();
/// // Bytes arrive one at a time; the frame appears exactly once complete.
/// for (i, &byte) in frame.iter().enumerate() {
///     reassembler.extend(&[byte]);
///     let decoded = reassembler.next_frame().unwrap();
///     assert_eq!(decoded.is_some(), i == frame.len() - 1);
/// }
/// ```
#[derive(Debug, Default)]
pub struct FrameReassembler {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by decoded frames; compacted when
    /// it grows past half the buffer so the amortized cost stays linear.
    start: usize,
}

impl FrameReassembler {
    /// An empty reassembler.
    #[must_use]
    pub fn new() -> Self {
        FrameReassembler::default()
    }

    /// Appends freshly read bytes to the pending buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered bytes not yet consumed by a decoded frame.
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Tries to decode the next complete frame from the buffered bytes.
    ///
    /// Returns `Ok(None)` when the buffer holds only a proper prefix of a
    /// frame (read more and call again). After an `Err` the stream is
    /// unframeable and should be dropped.
    ///
    /// # Errors
    ///
    /// Any codec error of [`envelope::decode`] on malformed input, plus
    /// [`NetError::FrameTooLarge`] when a frame would exceed
    /// [`MAX_FRAME_BYTES`].
    pub fn next_frame(&mut self) -> Result<Option<Envelope>, NetError> {
        Ok(self.next_frame_view()?.map(EnvelopeView::into_envelope))
    }

    /// Borrowing variant of [`FrameReassembler::next_frame`]: the payload of
    /// a data frame stays a view into the reassembly buffer, so callers that
    /// filter or drop frames never copy payload bytes. Consume the view (or
    /// call [`EnvelopeView::into_envelope`]) before buffering more bytes.
    ///
    /// # Errors
    ///
    /// Same as [`FrameReassembler::next_frame`].
    pub fn next_frame_view(&mut self) -> Result<Option<EnvelopeView<'_>>, NetError> {
        let pending = &self.buf[self.start..];
        let total = match envelope::required_len(pending) {
            Ok(total) => total,
            Err(NetError::Truncated { needed, .. }) => {
                debug_assert!(needed > pending.len(), "required_len must ask for more");
                return Ok(None);
            }
            Err(fatal) => return Err(fatal),
        };
        if total > MAX_FRAME_BYTES {
            // Unreachable while the codec's dimension caps hold, but the
            // buffer-growth bound must not depend on that invariant.
            return Err(NetError::FrameTooLarge { code_length: 0, payload_size: total });
        }
        if pending.len() < total {
            return Ok(None);
        }
        // Exact slice: a datagram decoder would reject trailing bytes, and
        // on a stream the "trailing" bytes are simply the next frame.
        let envelope = envelope::decode_view(&self.buf[self.start..self.start + total])?;
        self.start += total;
        Ok(Some(envelope))
    }

    fn compact(&mut self) {
        if self.start > 0 && self.start >= self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{encode, EnvelopeHeader, Message, MessageKind};
    use ltnc_gf2::{CodeVector, EncodedPacket, Payload};
    use ltnc_scheme::SchemeKind;

    fn header(kind: MessageKind) -> EnvelopeHeader {
        EnvelopeHeader { kind, scheme: SchemeKind::Rlnc, session: 11, generation: 2 }
    }

    fn sample_frames() -> Vec<Vec<u8>> {
        let packet = EncodedPacket::new(
            CodeVector::from_indices(16, &[1, 4, 9]),
            Payload::from_vec((0..33u8).collect()),
        );
        vec![
            encode(&header(MessageKind::Request), &Message::Request),
            encode(
                &header(MessageKind::Manifest),
                &Message::Manifest { object_len: 999, code_length: 16, payload_size: 33 },
            ),
            encode(
                &header(MessageKind::DataHeader),
                &Message::DataHeader {
                    transfer: 5,
                    trace: envelope::TraceContext { origin_micros: 42, hop: 1 },
                    payload_size: packet.payload_size(),
                    vector: packet.vector().clone(),
                },
            ),
            encode(
                &header(MessageKind::FeedbackAccept),
                &Message::Feedback { transfer: 5, accept: true },
            ),
            encode(
                &header(MessageKind::DataPayload),
                &Message::DataPayload {
                    transfer: 5,
                    trace: envelope::TraceContext { origin_micros: 42, hop: 1 },
                    packet,
                },
            ),
            encode(&header(MessageKind::Complete), &Message::Complete),
        ]
    }

    #[test]
    fn whole_stream_at_once_yields_every_frame_in_order() {
        let frames = sample_frames();
        let stream: Vec<u8> = frames.iter().flatten().copied().collect();
        let mut reassembler = FrameReassembler::new();
        reassembler.extend(&stream);
        for frame in &frames {
            let envelope = reassembler.next_frame().expect("valid").expect("complete");
            assert_eq!(envelope::encode_envelope(&envelope), *frame);
        }
        assert_eq!(reassembler.next_frame().unwrap(), None);
        assert_eq!(reassembler.pending_bytes(), 0);
    }

    #[test]
    fn one_byte_at_a_time_yields_identical_frames() {
        let frames = sample_frames();
        let stream: Vec<u8> = frames.iter().flatten().copied().collect();
        let mut reassembler = FrameReassembler::new();
        let mut decoded = Vec::new();
        for &byte in &stream {
            reassembler.extend(&[byte]);
            while let Some(envelope) = reassembler.next_frame().expect("valid stream") {
                decoded.push(envelope::encode_envelope(&envelope));
            }
        }
        assert_eq!(decoded, frames);
    }

    #[test]
    fn next_frame_view_borrows_payloads_from_the_buffer() {
        let frames = sample_frames();
        let stream: Vec<u8> = frames.iter().flatten().copied().collect();
        let mut reassembler = FrameReassembler::new();
        reassembler.extend(&stream);
        let mut payload_frames = 0;
        for frame in &frames {
            let view = reassembler.next_frame_view().expect("valid").expect("complete");
            if let crate::envelope::MessageView::DataPayload { packet, .. } = &view.message {
                // The payload is a window into the reassembly buffer, not a copy.
                let bytes = packet.payload_bytes();
                assert_eq!(bytes, &frame[frame.len() - bytes.len()..]);
                payload_frames += 1;
            }
            assert_eq!(envelope::encode_envelope(&view.into_envelope()), *frame);
        }
        assert_eq!(payload_frames, 1);
        assert_eq!(reassembler.next_frame_view().unwrap().map(|_| ()), None);
    }

    #[test]
    fn corrupt_magic_is_a_fatal_error() {
        let mut reassembler = FrameReassembler::new();
        reassembler.extend(b"XXXX garbage that is long enough to parse a header");
        assert!(matches!(reassembler.next_frame(), Err(NetError::BadMagic(_))));
    }

    #[test]
    fn short_garbage_waits_for_more_bytes_then_fails() {
        // Fewer than ENVELOPE_HEADER_BYTES garbage bytes: not yet decidable.
        let mut reassembler = FrameReassembler::new();
        reassembler.extend(&[0xFF; 5]);
        assert_eq!(reassembler.next_frame().unwrap(), None);
        reassembler.extend(&[0xFF; 32]);
        assert!(reassembler.next_frame().is_err());
    }
}
