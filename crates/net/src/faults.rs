//! Deterministic fault injection for transport tests.
//!
//! Every transport test in this workspace used to run over clean
//! localhost sockets, which exercises none of the failure handling the
//! protocol exists for. This module makes adverse conditions *seeded and
//! reproducible*, for streams and for datagrams:
//!
//! * [`FaultyStream`] wraps any `Read + Write` and injects faults from a
//!   [`FaultPlan`]: per-byte drops, per-call delays, read fragmentation,
//!   a clean truncation (EOF) at byte `K`, and a hard disconnect (error)
//!   at byte `K`. All randomness comes from a [`SmallRng`] seeded by the
//!   plan, so a failing case replays exactly.
//! * [`FaultProxy`] puts the same plans between two real TCP endpoints: a
//!   localhost forwarder that pumps each direction of every accepted
//!   connection through a `FaultyStream`. Integration tests point a
//!   client at the proxy instead of the server and get loss, stalls and
//!   mid-transfer disconnects without touching either endpoint's code.
//! * [`FaultySocket`] is the datagram counterpart: it wraps a
//!   [`UdpSocket`] and applies a [`DatagramFaultPlan`] per direction —
//!   whole-datagram drops, duplicates, reordering within a bounded
//!   window, and per-datagram delays. [`crate::peer::PeerNode`] runs all
//!   its traffic through one, so the UDP gossip tests exercise exactly
//!   the lossy links the paper's redundancy and this crate's adaptive
//!   pacing exist for. On top of the default inbound plan, *per-link*
//!   plans ([`FaultySocket::set_link_plan`]) override the fault rates for
//!   one sender at a time, with per-link tallies
//!   ([`FaultySocket::link_counters`]) — how the multi-hop topology
//!   harness (`ltnc-topo`) gives every overlay link its own seeded loss.
//!
//! Byte-counted stream faults (`truncate_read_at`, `disconnect_read_at`)
//! are deterministic regardless of how the OS chunks the stream, which is
//! what makes "kill the server after exactly K bytes" a stable test.
//! Datagram faults decide per *datagram* in arrival order, so a fixed
//! seed replays the same drop/duplicate/reorder pattern over the same
//! traffic.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use ltnc_telemetry::{FaultKind, TraceEvent, Tracer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded description of the faults to inject on one stream direction.
///
/// The default plan (via [`FaultPlan::clean`]) forwards bytes untouched;
/// builder methods switch individual faults on. Plans are `Copy` so a
/// proxy can stamp one onto every accepted connection.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision this plan makes.
    pub seed: u64,
    /// Deliver exactly this many bytes, then report clean EOF forever.
    pub truncate_read_at: Option<u64>,
    /// Deliver exactly this many bytes, then *stall*: every further read
    /// blocks briefly and returns `WouldBlock`, with the stream still
    /// open. Through a proxy this is a peer that stops making progress
    /// without dying — the case progress watermarks exist to catch.
    pub stall_read_at: Option<u64>,
    /// Deliver exactly this many bytes, then fail reads with
    /// `ConnectionReset` forever.
    pub disconnect_read_at: Option<u64>,
    /// Accept exactly this many written bytes, then fail writes with
    /// `BrokenPipe` forever.
    pub disconnect_write_at: Option<u64>,
    /// Probability in `[0, 1]` that each forwarded byte is silently
    /// dropped (stream corruption: the framing layer must error, never
    /// panic).
    pub drop_rate: f64,
    /// Sleep this long before every read call that reaches the inner
    /// stream (a slow peer).
    pub read_delay: Duration,
    /// Cap on bytes returned by a single read call, re-fragmenting the
    /// stream into small pieces (exercises incremental reassembly).
    pub max_read_chunk: Option<usize>,
}

impl FaultPlan {
    /// A plan that forwards everything untouched (the identity proxy).
    #[must_use]
    pub fn clean(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            truncate_read_at: None,
            stall_read_at: None,
            disconnect_read_at: None,
            disconnect_write_at: None,
            drop_rate: 0.0,
            read_delay: Duration::ZERO,
            max_read_chunk: None,
        }
    }

    /// Clean EOF after exactly `bytes` delivered bytes.
    #[must_use]
    pub fn truncate_read_at(mut self, bytes: u64) -> FaultPlan {
        self.truncate_read_at = Some(bytes);
        self
    }

    /// Stall (socket open, no further bytes) after exactly `bytes`
    /// delivered bytes.
    #[must_use]
    pub fn stall_read_at(mut self, bytes: u64) -> FaultPlan {
        self.stall_read_at = Some(bytes);
        self
    }

    /// Hard `ConnectionReset` after exactly `bytes` delivered bytes.
    #[must_use]
    pub fn disconnect_read_at(mut self, bytes: u64) -> FaultPlan {
        self.disconnect_read_at = Some(bytes);
        self
    }

    /// Hard `BrokenPipe` after exactly `bytes` accepted written bytes.
    #[must_use]
    pub fn disconnect_write_at(mut self, bytes: u64) -> FaultPlan {
        self.disconnect_write_at = Some(bytes);
        self
    }

    /// Drop each forwarded byte with probability `rate` (clamped to
    /// `[0, 1]`).
    #[must_use]
    pub fn drop_rate(mut self, rate: f64) -> FaultPlan {
        self.drop_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Delay every read by `delay` (a slow replica).
    #[must_use]
    pub fn delay_reads(mut self, delay: Duration) -> FaultPlan {
        self.read_delay = delay;
        self
    }

    /// Return at most `bytes` per read call.
    #[must_use]
    pub fn fragment_reads(mut self, bytes: usize) -> FaultPlan {
        self.max_read_chunk = Some(bytes.max(1));
        self
    }
}

/// A `Read + Write` wrapper executing a [`FaultPlan`].
///
/// Byte budgets count bytes *delivered to the caller* (after drops), so a
/// `truncate_read_at(K)` cut lands at the same protocol position however
/// the inner stream chunks its reads.
///
/// # Example
///
/// ```
/// use std::io::{Cursor, Read};
/// use ltnc_net::faults::{FaultPlan, FaultyStream};
///
/// // Deliver exactly 5 bytes, then a clean EOF — however the inner
/// // stream chunks its reads.
/// let plan = FaultPlan::clean(42).truncate_read_at(5);
/// let mut stream = FaultyStream::new(Cursor::new(vec![7u8; 100]), plan);
/// let mut out = Vec::new();
/// stream.read_to_end(&mut out).unwrap();
/// assert_eq!(out, vec![7u8; 5]);
/// assert_eq!(stream.read_delivered(), 5);
/// ```
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    plan: FaultPlan,
    rng: SmallRng,
    read_delivered: u64,
    write_accepted: u64,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> FaultyStream<S> {
        FaultyStream {
            inner,
            plan,
            rng: SmallRng::seed_from_u64(plan.seed ^ 0xFA_17_5E_ED),
            read_delivered: 0,
            write_accepted: 0,
        }
    }

    /// Bytes delivered to the reader so far (after drops and cuts).
    #[must_use]
    pub fn read_delivered(&self) -> u64 {
        self.read_delivered
    }

    /// Bytes accepted from the writer so far.
    #[must_use]
    pub fn write_accepted(&self) -> u64 {
        self.write_accepted
    }

    /// Consumes the wrapper, returning the inner stream.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// How many more bytes may be delivered before a read-side cut fires.
    fn read_budget(&self) -> Option<u64> {
        let cut =
            [self.plan.truncate_read_at, self.plan.stall_read_at, self.plan.disconnect_read_at]
                .into_iter()
                .flatten()
                .min();
        cut.map(|k| k.saturating_sub(self.read_delivered))
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if let Some(0) = self.read_budget() {
            if let Some(k) = self.plan.truncate_read_at {
                if self.read_delivered >= k {
                    return Ok(0); // clean truncation
                }
            }
            if let Some(k) = self.plan.stall_read_at {
                if self.read_delivered >= k {
                    // The peer is alive but mute: block a beat, make no
                    // progress, keep the stream open.
                    thread::sleep(Duration::from_millis(20));
                    return Err(io::Error::new(
                        io::ErrorKind::WouldBlock,
                        "fault injection: stall_read_at reached",
                    ));
                }
            }
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "fault injection: disconnect_read_at reached",
            ));
        }
        let mut limit = buf.len();
        if let Some(chunk) = self.plan.max_read_chunk {
            limit = limit.min(chunk);
        }
        if let Some(budget) = self.read_budget() {
            limit = limit.min(budget.try_into().unwrap_or(usize::MAX)).max(1);
        }
        if !self.plan.read_delay.is_zero() {
            thread::sleep(self.plan.read_delay);
        }
        let n = self.inner.read(&mut buf[..limit])?;
        if n == 0 {
            return Ok(0);
        }
        let delivered = if self.plan.drop_rate > 0.0 {
            // Retain each byte independently; compact in place.
            let mut kept = 0;
            for i in 0..n {
                if self.rng.gen_bool(1.0 - self.plan.drop_rate) {
                    buf[kept] = buf[i];
                    kept += 1;
                }
            }
            kept
        } else {
            n
        };
        self.read_delivered += delivered as u64;
        if delivered == 0 {
            // Every byte of this chunk was dropped; the caller sees a
            // spurious-wakeup-style empty read rather than EOF.
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "fault injection: chunk dropped",
            ));
        }
        Ok(delivered)
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some(k) = self.plan.disconnect_write_at {
            if self.write_accepted >= k {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "fault injection: disconnect_write_at reached",
                ));
            }
            let budget = (k - self.write_accepted).try_into().unwrap_or(usize::MAX);
            let n = self.inner.write(&buf[..buf.len().min(budget.max(1))])?;
            self.write_accepted += n as u64;
            return Ok(n);
        }
        let n = self.inner.write(buf)?;
        self.write_accepted += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A localhost TCP forwarder injecting faults between real endpoints.
///
/// Each accepted client connection is paired with a fresh upstream
/// connection; two pump threads copy bytes in each direction, the
/// client→server direction through `client_to_server`, the
/// server→client direction through `server_to_client`. When a pump sees
/// EOF or an injected error it shuts down *both* sockets, so a
/// `disconnect_read_at` on one side looks like a dead peer to both.
///
/// # Example
///
/// ```
/// use std::io::{Read, Write};
/// use std::net::{TcpListener, TcpStream};
/// use ltnc_net::faults::{FaultPlan, FaultProxy};
///
/// // An upstream that echoes a greeting to every connection…
/// let listener = TcpListener::bind("127.0.0.1:0").unwrap();
/// let upstream = listener.local_addr().unwrap();
/// std::thread::spawn(move || {
///     for stream in listener.incoming().flatten() {
///         let mut stream = stream;
///         let _ = stream.write_all(b"hello from upstream");
///     }
/// });
///
/// // …reached through a proxy that kills the reply after 5 bytes.
/// let proxy = FaultProxy::spawn(
///     upstream,
///     FaultPlan::clean(1),
///     FaultPlan::clean(2).truncate_read_at(5),
/// )
/// .unwrap();
/// let mut client = TcpStream::connect(proxy.local_addr()).unwrap();
/// let mut got = Vec::new();
/// client.read_to_end(&mut got).unwrap();
/// assert_eq!(got, b"hello");
/// proxy.shutdown();
/// ```
pub struct FaultProxy {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Spawns a proxy on an ephemeral localhost port forwarding to
    /// `upstream`. Every accepted connection gets its own copy of the two
    /// plans (same seed: connection-for-connection reproducible).
    ///
    /// # Errors
    ///
    /// Socket errors binding the listener.
    pub fn spawn(
        upstream: SocketAddr,
        client_to_server: FaultPlan,
        server_to_client: FaultPlan,
    ) -> io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = thread::spawn(move || {
            let mut pumps: Vec<JoinHandle<()>> = Vec::new();
            while !accept_stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((client, _)) => {
                        match TcpStream::connect(upstream) {
                            Ok(server) => {
                                pumps.extend(pump_pair(
                                    client,
                                    server,
                                    client_to_server,
                                    server_to_client,
                                    Arc::clone(&accept_stop),
                                ));
                            }
                            Err(_) => drop(client), // upstream dead: refuse
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => {}
                }
            }
            for pump in pumps {
                let _ = pump.join();
            }
        });
        Ok(FaultProxy { local_addr, stop, accept_thread: Some(accept_thread) })
    }

    /// The address clients should connect to instead of the upstream.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting and joins the forwarding threads. Called by `Drop`
    /// as well; explicit shutdown just surfaces panics earlier.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Spawns the two directional pumps of one proxied connection.
fn pump_pair(
    client: TcpStream,
    server: TcpStream,
    client_to_server: FaultPlan,
    server_to_client: FaultPlan,
    stop: Arc<AtomicBool>,
) -> Vec<JoinHandle<()>> {
    let pair = || -> io::Result<_> {
        // Short read timeouts keep every pump responsive to `stop` (so a
        // stalled connection cannot hang proxy shutdown) and to peer EOF,
        // which should propagate promptly.
        client.set_read_timeout(Some(Duration::from_millis(20)))?;
        server.set_read_timeout(Some(Duration::from_millis(20)))?;
        let c_read = client.try_clone()?;
        let s_read = server.try_clone()?;
        Ok((c_read, s_read))
    };
    let Ok((c_read, s_read)) = pair() else {
        return Vec::new();
    };
    let up_stop = Arc::clone(&stop);
    let up = thread::spawn(move || {
        pump(FaultyStream::new(c_read, client_to_server), server, &up_stop);
    });
    let down = thread::spawn(move || {
        pump(FaultyStream::new(s_read, server_to_client), client, &stop);
    });
    vec![up, down]
}

/// Copies `from` into `to` until EOF, any error, or `stop`, then severs
/// both ends.
fn pump<S: Read>(mut from: FaultyStream<S>, mut to: TcpStream, stop: &AtomicBool) {
    let mut buf = [0u8; 4096];
    while !stop.load(Ordering::Acquire) {
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    // One direction dying kills the whole proxied connection: a half-dead
    // replica should look dead, not half-alive.
    let _ = to.shutdown(Shutdown::Both);
}

/// A seeded description of the faults to inject on one *datagram*
/// direction (inbound or outbound) of a [`FaultySocket`].
///
/// The default plan (via [`DatagramFaultPlan::clean`]) forwards every
/// datagram untouched; builder methods switch individual faults on. All
/// decisions are made per datagram in arrival order from a [`SmallRng`]
/// seeded by the plan, so a fixed seed replays the same fault pattern
/// over the same traffic.
#[derive(Debug, Clone, Copy)]
pub struct DatagramFaultPlan {
    /// Seed for every probabilistic decision this plan makes.
    pub seed: u64,
    /// Probability in `[0, 1]` that a datagram is silently dropped.
    pub drop_rate: f64,
    /// Probability in `[0, 1]` that a datagram is delivered twice.
    pub duplicate_rate: f64,
    /// Probability in `[0, 1]` that a datagram is held back and released
    /// out of order, displaced by at most [`reorder_window`] later
    /// datagrams.
    ///
    /// [`reorder_window`]: DatagramFaultPlan::reorder_window
    pub reorder_rate: f64,
    /// Maximum number of later datagrams that may overtake a held one.
    /// `0` disables reordering regardless of [`reorder_rate`].
    ///
    /// [`reorder_rate`]: DatagramFaultPlan::reorder_rate
    pub reorder_window: usize,
    /// Probability in `[0, 1]` that a datagram is delayed by [`delay`]
    /// before delivery (link jitter).
    ///
    /// [`delay`]: DatagramFaultPlan::delay
    pub delay_rate: f64,
    /// How long a delayed datagram is held up.
    pub delay: Duration,
}

impl DatagramFaultPlan {
    /// A plan that forwards every datagram untouched.
    #[must_use]
    pub fn clean(seed: u64) -> DatagramFaultPlan {
        DatagramFaultPlan {
            seed,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            reorder_window: 0,
            delay_rate: 0.0,
            delay: Duration::ZERO,
        }
    }

    /// Drop each datagram with probability `rate` (clamped to `[0, 1]`).
    #[must_use]
    pub fn drop_rate(mut self, rate: f64) -> DatagramFaultPlan {
        self.drop_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Deliver each datagram twice with probability `rate`.
    #[must_use]
    pub fn duplicate_rate(mut self, rate: f64) -> DatagramFaultPlan {
        self.duplicate_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Hold each datagram with probability `rate` and release it after at
    /// most `window` later datagrams have overtaken it.
    #[must_use]
    pub fn reorder(mut self, rate: f64, window: usize) -> DatagramFaultPlan {
        self.reorder_rate = rate.clamp(0.0, 1.0);
        self.reorder_window = window;
        self
    }

    /// Delay each datagram by `delay` with probability `rate`.
    #[must_use]
    pub fn delay(mut self, rate: f64, delay: Duration) -> DatagramFaultPlan {
        self.delay_rate = rate.clamp(0.0, 1.0);
        self.delay = delay;
        self
    }

    /// `true` when this plan injects nothing (the fast path skips the
    /// fault bookkeeping entirely).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.drop_rate == 0.0
            && self.duplicate_rate == 0.0
            && (self.reorder_rate == 0.0 || self.reorder_window == 0)
            && self.delay_rate == 0.0
    }
}

/// The per-direction fault plans of one [`FaultySocket`].
#[derive(Debug, Clone, Copy)]
pub struct DatagramFaults {
    /// Faults applied to datagrams arriving at this socket.
    pub inbound: DatagramFaultPlan,
    /// Faults applied to datagrams this socket sends.
    pub outbound: DatagramFaultPlan,
}

impl DatagramFaults {
    /// No faults in either direction.
    #[must_use]
    pub fn clean(seed: u64) -> DatagramFaults {
        DatagramFaults {
            inbound: DatagramFaultPlan::clean(seed),
            outbound: DatagramFaultPlan::clean(seed ^ 0x0DD0),
        }
    }

    /// Faults on the receive path only — the usual way to emulate a lossy
    /// link in a swarm, where every datagram crosses exactly one
    /// receiver's inbound plan.
    #[must_use]
    pub fn inbound(plan: DatagramFaultPlan) -> DatagramFaults {
        DatagramFaults { inbound: plan, outbound: DatagramFaultPlan::clean(plan.seed ^ 0x0DD0) }
    }

    /// The same fault rates in both directions, with decorrelated seeds.
    #[must_use]
    pub fn symmetric(plan: DatagramFaultPlan) -> DatagramFaults {
        DatagramFaults {
            inbound: plan,
            outbound: DatagramFaultPlan { seed: plan.seed ^ 0x0DD0, ..plan },
        }
    }

    /// Re-seeds both plans for node `index` of a swarm, keeping the rates
    /// (splitmix64-style mixing so neighbouring indices decorrelate).
    #[must_use]
    pub fn for_node(&self, index: u64) -> DatagramFaults {
        let mix = |seed: u64| {
            let mut z = seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        DatagramFaults {
            inbound: DatagramFaultPlan { seed: mix(self.inbound.seed), ..self.inbound },
            outbound: DatagramFaultPlan { seed: mix(self.outbound.seed), ..self.outbound },
        }
    }
}

/// Snapshot of the faults a [`FaultySocket`] has injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DatagramFaultCounters {
    /// Inbound datagrams silently dropped.
    pub dropped_in: u64,
    /// Outbound datagrams silently dropped.
    pub dropped_out: u64,
    /// Inbound datagrams delivered twice.
    pub duplicated_in: u64,
    /// Outbound datagrams sent twice.
    pub duplicated_out: u64,
    /// Inbound datagrams released out of order.
    pub reordered_in: u64,
    /// Outbound datagrams released out of order.
    pub reordered_out: u64,
    /// Inbound datagrams delayed.
    pub delayed_in: u64,
    /// Outbound datagrams delayed.
    pub delayed_out: u64,
}

impl DatagramFaultCounters {
    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &DatagramFaultCounters) {
        self.dropped_in += other.dropped_in;
        self.dropped_out += other.dropped_out;
        self.duplicated_in += other.duplicated_in;
        self.duplicated_out += other.duplicated_out;
        self.reordered_in += other.reordered_in;
        self.reordered_out += other.reordered_out;
        self.delayed_in += other.delayed_in;
        self.delayed_out += other.delayed_out;
    }

    /// The per-field difference `self − previous`, saturating at zero —
    /// what an interval scraper needs to turn two cumulative snapshots
    /// into the faults injected *between* them.
    #[must_use]
    pub fn snapshot_delta(&self, previous: &DatagramFaultCounters) -> DatagramFaultCounters {
        DatagramFaultCounters {
            dropped_in: self.dropped_in.saturating_sub(previous.dropped_in),
            dropped_out: self.dropped_out.saturating_sub(previous.dropped_out),
            duplicated_in: self.duplicated_in.saturating_sub(previous.duplicated_in),
            duplicated_out: self.duplicated_out.saturating_sub(previous.duplicated_out),
            reordered_in: self.reordered_in.saturating_sub(previous.reordered_in),
            reordered_out: self.reordered_out.saturating_sub(previous.reordered_out),
            delayed_in: self.delayed_in.saturating_sub(previous.delayed_in),
            delayed_out: self.delayed_out.saturating_sub(previous.delayed_out),
        }
    }

    /// Total datagrams affected by any fault, either direction.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.dropped_in
            + self.dropped_out
            + self.duplicated_in
            + self.duplicated_out
            + self.reordered_in
            + self.reordered_out
            + self.delayed_in
            + self.delayed_out
    }
}

#[derive(Default)]
struct FaultTotals {
    dropped_in: AtomicU64,
    dropped_out: AtomicU64,
    duplicated_in: AtomicU64,
    duplicated_out: AtomicU64,
    reordered_in: AtomicU64,
    reordered_out: AtomicU64,
    delayed_in: AtomicU64,
    delayed_out: AtomicU64,
}

impl FaultTotals {
    /// Folds one datagram's fault delta into the socket-wide totals.
    fn add(&self, delta: &DatagramFaultCounters) {
        self.dropped_in.fetch_add(delta.dropped_in, Ordering::Relaxed);
        self.dropped_out.fetch_add(delta.dropped_out, Ordering::Relaxed);
        self.duplicated_in.fetch_add(delta.duplicated_in, Ordering::Relaxed);
        self.duplicated_out.fetch_add(delta.duplicated_out, Ordering::Relaxed);
        self.reordered_in.fetch_add(delta.reordered_in, Ordering::Relaxed);
        self.reordered_out.fetch_add(delta.reordered_out, Ordering::Relaxed);
        self.delayed_in.fetch_add(delta.delayed_in, Ordering::Relaxed);
        self.delayed_out.fetch_add(delta.delayed_out, Ordering::Relaxed);
    }
}

/// A datagram held back by the reorder fault, released once `remaining`
/// later datagrams have passed it (or the link goes idle).
struct HeldDatagram {
    bytes: Vec<u8>,
    peer: SocketAddr,
    remaining: usize,
}

struct DirectionState {
    plan: DatagramFaultPlan,
    rng: SmallRng,
    /// Datagrams held by the reorder fault, oldest first.
    held: VecDeque<HeldDatagram>,
    /// Datagrams due for delivery before anything new is pulled from the
    /// socket (expired holds, duplicate copies), oldest first.
    ready: VecDeque<(Vec<u8>, SocketAddr)>,
}

impl DirectionState {
    fn new(plan: DatagramFaultPlan) -> DirectionState {
        DirectionState {
            plan,
            rng: SmallRng::seed_from_u64(plan.seed ^ 0xDA7A_FA17),
            held: VecDeque::new(),
            ready: VecDeque::new(),
        }
    }

    /// One datagram has passed the held ones: age them, moving expired
    /// holds onto the ready queue (their displacement reached the window).
    fn age_held(&mut self) {
        for held in &mut self.held {
            held.remaining = held.remaining.saturating_sub(1);
        }
        while self.held.front().is_some_and(|h| h.remaining == 0) {
            let held = self.held.pop_front().expect("checked non-empty");
            self.ready.push_back((held.bytes, held.peer));
        }
    }
}

/// One per-origin inbound override: its own plan state plus the faults it
/// has injected (also folded into the socket-wide totals).
struct LinkState {
    dir: DirectionState,
    counters: DatagramFaultCounters,
}

/// The whole inbound side of a [`FaultySocket`]: the default plan every
/// datagram crosses, plus per-origin overrides keyed by sender address
/// (ordered, so multi-link delivery and draining are deterministic).
struct InboundState {
    default: DirectionState,
    links: BTreeMap<SocketAddr, LinkState>,
}

impl InboundState {
    fn new(plan: DatagramFaultPlan) -> InboundState {
        InboundState { default: DirectionState::new(plan), links: BTreeMap::new() }
    }

    /// `true` when no plan — default or per-link — can inject anything.
    fn is_clean(&self) -> bool {
        self.default.plan.is_clean() && self.links.is_empty()
    }

    /// The direction state (and per-link counters, if any) a datagram
    /// from `from` must cross.
    fn route(
        &mut self,
        from: SocketAddr,
    ) -> (&mut DirectionState, Option<&mut DatagramFaultCounters>) {
        if self.links.contains_key(&from) {
            let link = self.links.get_mut(&from).expect("checked above");
            (&mut link.dir, Some(&mut link.counters))
        } else {
            (&mut self.default, None)
        }
    }

    /// Pops the oldest due datagram from any ready queue (default first,
    /// then links in address order).
    fn pop_ready(&mut self) -> Option<(Vec<u8>, SocketAddr)> {
        if let Some(ready) = self.default.ready.pop_front() {
            return Some(ready);
        }
        self.links.values_mut().find_map(|link| link.dir.ready.pop_front())
    }

    /// Pops one datagram still held for reordering (default first, then
    /// links in address order) — the idle-link release path.
    fn pop_held(&mut self) -> Option<(Vec<u8>, SocketAddr)> {
        if let Some(held) = self.default.held.pop_front() {
            return Some((held.bytes, held.peer));
        }
        self.links
            .values_mut()
            .find_map(|link| link.dir.held.pop_front().map(|h| (h.bytes, h.peer)))
    }
}

/// A [`UdpSocket`] wrapper injecting seeded whole-datagram faults.
///
/// Wraps the blocking two-call API [`PeerNode`] uses — `recv_from` and
/// `send_to` — and applies one [`DatagramFaultPlan`] per direction:
/// drops, duplicates, reordering within a bounded window, and delays.
/// Clones share fault state (and counters), so a receive handle on one
/// thread and a send handle on another see one coherent plan.
///
/// Reordered datagrams are held until enough later traffic has overtaken
/// them; when the link goes idle (a read times out) held datagrams are
/// released instead — outbound ones onto the wire, the oldest inbound
/// one to the caller — and dropping a handle flushes the outbound queue
/// too, so a held datagram is delayed, never lost. Dropped datagrams
/// surface to a blocking reader as
/// [`io::ErrorKind::WouldBlock`], exactly like a read timeout — callers
/// with a retry loop need no changes.
///
/// [`PeerNode`]: crate::peer::PeerNode
///
/// # Example
///
/// ```
/// use std::net::UdpSocket;
/// use ltnc_net::faults::{DatagramFaultPlan, DatagramFaults, FaultySocket};
///
/// let inner = UdpSocket::bind("127.0.0.1:0").unwrap();
/// let faults = DatagramFaults::inbound(DatagramFaultPlan::clean(7).drop_rate(1.0));
/// let socket = FaultySocket::new(inner, faults).unwrap();
///
/// let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
/// sender.send_to(b"doomed", socket.local_addr().unwrap()).unwrap();
///
/// // Every inbound datagram is dropped: the reader sees only timeouts.
/// socket.set_read_timeout(Some(std::time::Duration::from_millis(50))).unwrap();
/// let mut buf = [0u8; 64];
/// assert!(socket.recv_from(&mut buf).is_err());
/// assert_eq!(socket.fault_counters().dropped_in, 1);
/// ```
pub struct FaultySocket {
    socket: UdpSocket,
    recv: Arc<Mutex<InboundState>>,
    send: Arc<Mutex<DirectionState>>,
    totals: Arc<FaultTotals>,
    tracer: Tracer,
}

impl FaultySocket {
    /// Wraps `socket` under the per-direction `faults`.
    ///
    /// # Errors
    ///
    /// Never fails today; the `io::Result` mirrors `UdpSocket`
    /// constructors so callers compose it with socket setup.
    pub fn new(socket: UdpSocket, faults: DatagramFaults) -> io::Result<FaultySocket> {
        FaultySocket::with_tracer(socket, faults, Tracer::off())
    }

    /// Like [`FaultySocket::new`], but every injected fault also emits a
    /// [`TraceEvent::FaultInjected`] on `tracer` (attributed to the peer
    /// the datagram came from or was going to).
    ///
    /// # Errors
    ///
    /// Never fails today; the `io::Result` mirrors `UdpSocket`
    /// constructors so callers compose it with socket setup.
    pub fn with_tracer(
        socket: UdpSocket,
        faults: DatagramFaults,
        tracer: Tracer,
    ) -> io::Result<FaultySocket> {
        Ok(FaultySocket {
            socket,
            recv: Arc::new(Mutex::new(InboundState::new(faults.inbound))),
            send: Arc::new(Mutex::new(DirectionState::new(faults.outbound))),
            totals: Arc::new(FaultTotals::default()),
            tracer,
        })
    }

    /// Installs (or replaces) a dedicated inbound fault plan for
    /// datagrams arriving *from* `from` — a per-link plan, where a link
    /// is identified by its sender. Datagrams from other origins keep
    /// crossing the socket's default inbound plan. Faults injected by a
    /// link plan are tallied both socket-wide
    /// ([`FaultySocket::fault_counters`]) and per link
    /// ([`FaultySocket::link_counters`]), so per-link loss stays
    /// attributable in multi-hop topology runs.
    pub fn set_link_plan(&self, from: SocketAddr, plan: DatagramFaultPlan) {
        let mut state = self.recv.lock().expect("recv fault state poisoned");
        state.links.insert(
            from,
            LinkState {
                dir: DirectionState::new(plan),
                counters: DatagramFaultCounters::default(),
            },
        );
    }

    /// Faults injected per inbound link plan so far, ordered by sender
    /// address (empty when [`FaultySocket::set_link_plan`] was never
    /// called). Link faults are also included in
    /// [`FaultySocket::fault_counters`].
    #[must_use]
    pub fn link_counters(&self) -> Vec<(SocketAddr, DatagramFaultCounters)> {
        let state = self.recv.lock().expect("recv fault state poisoned");
        state.links.iter().map(|(&from, link)| (from, link.counters)).collect()
    }

    /// A second handle to the same socket sharing the same fault state
    /// (the socket-thread / actor-thread split of [`crate::peer`]).
    ///
    /// # Errors
    ///
    /// Propagates `UdpSocket::try_clone` failures.
    pub fn try_clone(&self) -> io::Result<FaultySocket> {
        Ok(FaultySocket {
            socket: self.socket.try_clone()?,
            recv: Arc::clone(&self.recv),
            send: Arc::clone(&self.send),
            totals: Arc::clone(&self.totals),
            tracer: self.tracer.clone(),
        })
    }

    /// The wrapped socket's local address.
    ///
    /// # Errors
    ///
    /// Propagates `UdpSocket::local_addr` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Sets the read timeout of the wrapped socket.
    ///
    /// # Errors
    ///
    /// Propagates `UdpSocket::set_read_timeout` failures.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.socket.set_read_timeout(timeout)
    }

    /// Faults injected so far, both directions.
    #[must_use]
    pub fn fault_counters(&self) -> DatagramFaultCounters {
        DatagramFaultCounters {
            dropped_in: self.totals.dropped_in.load(Ordering::Relaxed),
            dropped_out: self.totals.dropped_out.load(Ordering::Relaxed),
            duplicated_in: self.totals.duplicated_in.load(Ordering::Relaxed),
            duplicated_out: self.totals.duplicated_out.load(Ordering::Relaxed),
            reordered_in: self.totals.reordered_in.load(Ordering::Relaxed),
            reordered_out: self.totals.reordered_out.load(Ordering::Relaxed),
            delayed_in: self.totals.delayed_in.load(Ordering::Relaxed),
            delayed_out: self.totals.delayed_out.load(Ordering::Relaxed),
        }
    }

    /// Receives one datagram, applying the inbound fault plan.
    ///
    /// Dropped datagrams (and datagrams freshly held for reordering)
    /// surface as [`io::ErrorKind::WouldBlock`], indistinguishable from a
    /// read timeout to the caller's retry loop.
    ///
    /// # Errors
    ///
    /// Everything `UdpSocket::recv_from` can return, plus the synthetic
    /// `WouldBlock` described above.
    pub fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        let mut state = self.recv.lock().expect("recv fault state poisoned");
        if let Some((bytes, peer)) = state.pop_ready() {
            return Ok(deliver(&bytes, peer, buf));
        }
        if state.is_clean() {
            let result = self.socket.recv_from(buf);
            if let Err(e) = &result {
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut {
                    // Even with a clean inbound plan, an idle link must
                    // release what the *outbound* reorder fault holds.
                    self.flush_held_send();
                }
            }
            return result;
        }
        match self.socket.recv_from(buf) {
            Ok((len, peer)) => {
                match self.apply_inbound(&mut state, buf, len, peer) {
                    None => Ok((len, peer)),
                    // The arriving datagram was consumed (dropped, held):
                    // hand out anything already due instead, else signal
                    // the caller to retry.
                    Some(reason) => match state.pop_ready() {
                        Some((bytes, peer)) => Ok(deliver(&bytes, peer, buf)),
                        None => Err(io::Error::new(
                            io::ErrorKind::WouldBlock,
                            format!("fault injection: {reason}"),
                        )),
                    },
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle link: nothing further will overtake held datagrams,
                // so release them — every held *outbound* one onto the
                // wire, the oldest inbound one to the caller. Delayed,
                // never stranded (a node that converged and stopped
                // sending must not strand its final COMPLETEs).
                self.flush_held_send();
                match state.pop_held() {
                    Some((bytes, peer)) => Ok(deliver(&bytes, peer, buf)),
                    None => Err(e),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Pushes one freshly received datagram through the inbound fault
    /// plan its origin routes to. Returns `None` when the datagram
    /// survives (it is still in `buf`; a duplicate copy may have been
    /// queued as ready), or `Some(reason)` when the plan consumed it
    /// (dropped, or held for reordering).
    fn apply_inbound(
        &self,
        state: &mut InboundState,
        buf: &[u8],
        len: usize,
        peer: SocketAddr,
    ) -> Option<&'static str> {
        // Per-link plans shadow the default for their origin; the
        // datagram crosses exactly one plan either way.
        let (dir, link) = state.route(peer);
        dir.age_held();
        let plan = dir.plan;
        let mut delta = DatagramFaultCounters::default();
        let mut consumed = None;
        if plan.delay_rate > 0.0 && dir.rng.gen_bool(plan.delay_rate) {
            delta.delayed_in += 1;
            thread::sleep(plan.delay);
        }
        if plan.drop_rate > 0.0 && dir.rng.gen_bool(plan.drop_rate) {
            delta.dropped_in += 1;
            consumed = Some("datagram dropped");
        } else if plan.reorder_window > 0
            && plan.reorder_rate > 0.0
            && dir.rng.gen_bool(plan.reorder_rate)
        {
            delta.reordered_in += 1;
            let remaining = dir.rng.gen_range(1..=plan.reorder_window);
            dir.held.push_back(HeldDatagram { bytes: buf[..len].to_vec(), peer, remaining });
            consumed = Some("datagram held for reorder");
        } else if plan.duplicate_rate > 0.0 && dir.rng.gen_bool(plan.duplicate_rate) {
            delta.duplicated_in += 1;
            dir.ready.push_back((buf[..len].to_vec(), peer));
        }
        if let Some(link) = link {
            link.merge(&delta);
        }
        self.totals.add(&delta);
        self.emit_inbound_faults(&delta, peer);
        consumed
    }

    /// Receives one datagram without ever blocking or surfacing a
    /// synthetic error — the edge-triggered drain-loop twin of
    /// [`FaultySocket::recv_from`]. Requires the socket to be in
    /// nonblocking mode (see [`FaultySocket::set_nonblocking`]).
    ///
    /// Returns `Ok(Some(..))` for a delivered datagram, `Ok(None)` when
    /// the OS buffer is empty. When the fault plan consumes a datagram
    /// (drop, reorder-hold) the loop keeps pulling, so a consumed
    /// datagram can never mask ones still queued behind it — the hazard
    /// the blocking API's synthetic `WouldBlock` poses to edge-triggered
    /// callers, who would stop draining and strand OS-buffered traffic
    /// until the next (never-coming) edge.
    ///
    /// Deliberately *not* part of this call: releasing reorder-held
    /// datagrams. Blocking readers learn the link went idle from a read
    /// timeout; a nonblocking reader has no timeout, so it must detect
    /// idleness itself ([`FaultySocket::has_held_datagrams`]) and release
    /// via [`FaultySocket::release_held`] on a timer.
    ///
    /// Delay faults still `thread::sleep` the caller — on a sharded
    /// runtime that stalls a whole worker and every node on it. Prefer
    /// drop/reorder/duplicate plans in sharded stress runs.
    ///
    /// # Errors
    ///
    /// Real socket errors only; `WouldBlock`/`TimedOut` become
    /// `Ok(None)` and fault consumption is handled internally.
    pub fn try_recv_from(&self, buf: &mut [u8]) -> io::Result<Option<(usize, SocketAddr)>> {
        let mut state = self.recv.lock().expect("recv fault state poisoned");
        loop {
            if let Some((bytes, peer)) = state.pop_ready() {
                return Ok(Some(deliver(&bytes, peer, buf)));
            }
            match self.socket.recv_from(buf) {
                Ok((len, peer)) => {
                    if state.is_clean() || self.apply_inbound(&mut state, buf, len, peer).is_none()
                    {
                        return Ok(Some((len, peer)));
                    }
                    // Consumed by the plan: loop — something due may have
                    // aged onto a ready queue, and more datagrams may sit
                    // in the OS buffer behind the one just eaten.
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Whether any datagram is parked inside the fault state — inbound
    /// or outbound, held for reordering or already due. Nonblocking
    /// callers poll this after a drain to decide whether to arm an
    /// idle-release timer for [`FaultySocket::release_held`].
    #[must_use]
    pub fn has_held_datagrams(&self) -> bool {
        let inbound = {
            let state = self.recv.lock().expect("recv fault state poisoned");
            let dirs =
                std::iter::once(&state.default).chain(state.links.values().map(|link| &link.dir));
            dirs.into_iter().any(|dir| !dir.held.is_empty() || !dir.ready.is_empty())
        };
        if inbound {
            return true;
        }
        let state = self.send.lock().expect("send fault state poisoned");
        !state.held.is_empty() || !state.ready.is_empty()
    }

    /// Declares the link idle: transmits every held outbound datagram
    /// and moves every held inbound one onto its ready queue, where the
    /// next [`FaultySocket::try_recv_from`] (or `recv_from`) delivers
    /// it. The timer-driven equivalent of the read-timeout release in
    /// [`FaultySocket::recv_from`] — reordering delays datagrams, it
    /// never strands them, on either runtime.
    pub fn release_held(&self) {
        self.flush_held_send();
        let mut state = self.recv.lock().expect("recv fault state poisoned");
        let InboundState { default, links } = &mut *state;
        let dirs = std::iter::once(default).chain(links.values_mut().map(|link| &mut link.dir));
        for dir in dirs {
            while let Some(held) = dir.held.pop_front() {
                dir.ready.push_back((held.bytes, held.peer));
            }
        }
    }

    /// Moves the wrapped socket in or out of nonblocking mode.
    ///
    /// The flag lives on the OS file description, which clones share:
    /// flipping it on any handle flips it for all of them. A socket
    /// driven by a poll loop should be switched once, up front, and
    /// never mixed with blocking readers.
    ///
    /// # Errors
    ///
    /// Propagates `UdpSocket::set_nonblocking` failures.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        self.socket.set_nonblocking(nonblocking)
    }

    /// The wrapped socket's raw descriptor, for readiness registration.
    /// The descriptor stays owned by this socket — do not close it.
    #[must_use]
    pub fn as_raw_fd(&self) -> RawFd {
        self.socket.as_raw_fd()
    }

    /// One [`TraceEvent::FaultInjected`] per fault a datagram from `peer`
    /// just suffered.
    fn emit_inbound_faults(&self, delta: &DatagramFaultCounters, peer: SocketAddr) {
        if !self.tracer.is_enabled() {
            return;
        }
        for (count, kind) in [
            (delta.delayed_in, FaultKind::Delay),
            (delta.dropped_in, FaultKind::Drop),
            (delta.reordered_in, FaultKind::Reorder),
            (delta.duplicated_in, FaultKind::Duplicate),
        ] {
            if count > 0 {
                self.tracer.emit(|| TraceEvent::FaultInjected {
                    kind,
                    inbound: true,
                    peer: Some(peer),
                });
            }
        }
    }

    /// Transmits everything the outbound reorder fault still holds, due
    /// or not. Called when a reader observes an idle link and when a
    /// handle drops, so held datagrams are delayed, never lost.
    fn flush_held_send(&self) {
        let Ok(mut state) = self.send.lock() else { return };
        while let Some((bytes, peer)) = state.ready.pop_front() {
            let _ = self.socket.send_to(&bytes, peer);
        }
        while let Some(held) = state.held.pop_front() {
            let _ = self.socket.send_to(&held.bytes, held.peer);
        }
    }

    /// Sends one datagram, applying the outbound fault plan. Dropped and
    /// held datagrams still report their full length as sent — the faults
    /// model the link, not the local syscall.
    ///
    /// # Errors
    ///
    /// Everything `UdpSocket::send_to` can return.
    pub fn send_to(&self, bytes: &[u8], to: SocketAddr) -> io::Result<usize> {
        let mut state = self.send.lock().expect("send fault state poisoned");
        if state.plan.is_clean() {
            return self.socket.send_to(bytes, to);
        }
        state.age_held();
        while let Some((held, peer)) = state.ready.pop_front() {
            let _ = self.socket.send_to(&held, peer);
        }
        let plan = state.plan;
        if plan.delay_rate > 0.0 && state.rng.gen_bool(plan.delay_rate) {
            self.totals.delayed_out.fetch_add(1, Ordering::Relaxed);
            self.emit_outbound_fault(FaultKind::Delay, to);
            thread::sleep(plan.delay);
        }
        if plan.drop_rate > 0.0 && state.rng.gen_bool(plan.drop_rate) {
            self.totals.dropped_out.fetch_add(1, Ordering::Relaxed);
            self.emit_outbound_fault(FaultKind::Drop, to);
            return Ok(bytes.len());
        }
        if plan.reorder_window > 0
            && plan.reorder_rate > 0.0
            && state.rng.gen_bool(plan.reorder_rate)
        {
            self.totals.reordered_out.fetch_add(1, Ordering::Relaxed);
            self.emit_outbound_fault(FaultKind::Reorder, to);
            let remaining = state.rng.gen_range(1..=plan.reorder_window);
            state.held.push_back(HeldDatagram { bytes: bytes.to_vec(), peer: to, remaining });
            return Ok(bytes.len());
        }
        if plan.duplicate_rate > 0.0 && state.rng.gen_bool(plan.duplicate_rate) {
            self.totals.duplicated_out.fetch_add(1, Ordering::Relaxed);
            self.emit_outbound_fault(FaultKind::Duplicate, to);
            let _ = self.socket.send_to(bytes, to);
        }
        self.socket.send_to(bytes, to)
    }

    fn emit_outbound_fault(&self, kind: FaultKind, to: SocketAddr) {
        self.tracer.emit(|| TraceEvent::FaultInjected { kind, inbound: false, peer: Some(to) });
    }
}

impl Drop for FaultySocket {
    fn drop(&mut self) {
        // Any handle dropping flushes held outbound datagrams (the queues
        // are popped, so clones flushing too is harmless): reordering
        // delays traffic, it never swallows it.
        self.flush_held_send();
    }
}

/// Copies a stashed datagram out to the caller's buffer, truncating like
/// UDP does when the buffer is too small.
fn deliver(bytes: &[u8], peer: SocketAddr, buf: &mut [u8]) -> (usize, SocketAddr) {
    let len = bytes.len().min(buf.len());
    buf[..len].copy_from_slice(&bytes[..len]);
    (len, peer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn bytes(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 7 % 251) as u8).collect()
    }

    #[test]
    fn snapshot_delta_subtracts_per_field_and_saturates() {
        let earlier =
            DatagramFaultCounters { dropped_in: 3, delayed_out: 10, ..Default::default() };
        let later = DatagramFaultCounters {
            dropped_in: 8,
            duplicated_in: 2,
            delayed_out: 10,
            ..Default::default()
        };
        let delta = later.snapshot_delta(&earlier);
        assert_eq!(delta.dropped_in, 5);
        assert_eq!(delta.duplicated_in, 2);
        assert_eq!(delta.delayed_out, 0, "unchanged counters delta to zero");
        assert_eq!(delta.total(), 7);
        // A stale "later" snapshot (e.g. counters from a reset socket)
        // must clamp, not wrap.
        assert_eq!(earlier.snapshot_delta(&later).dropped_in, 0);
    }

    fn drain(stream: &mut FaultyStream<Cursor<Vec<u8>>>) -> (Vec<u8>, Option<io::ErrorKind>) {
        let mut out = Vec::new();
        let mut buf = [0u8; 33];
        loop {
            match stream.read(&mut buf) {
                Ok(0) => return (out, None),
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(e) => return (out, Some(e.kind())),
            }
        }
    }

    #[test]
    fn clean_plan_is_the_identity() {
        let data = bytes(1000);
        let mut s = FaultyStream::new(Cursor::new(data.clone()), FaultPlan::clean(1));
        let (out, err) = drain(&mut s);
        assert_eq!(out, data);
        assert_eq!(err, None);
    }

    #[test]
    fn truncation_delivers_exactly_k_bytes_then_eof() {
        let data = bytes(500);
        for k in [0u64, 1, 37, 499, 500, 900] {
            let plan = FaultPlan::clean(2).truncate_read_at(k);
            let mut s = FaultyStream::new(Cursor::new(data.clone()), plan);
            let (out, err) = drain(&mut s);
            let expect = (k as usize).min(data.len());
            assert_eq!(out, data[..expect], "k = {k}");
            assert_eq!(err, None, "truncation is a clean EOF");
        }
    }

    #[test]
    fn disconnect_delivers_exactly_k_bytes_then_errors() {
        let data = bytes(500);
        let plan = FaultPlan::clean(3).disconnect_read_at(123);
        let mut s = FaultyStream::new(Cursor::new(data.clone()), plan);
        let (out, err) = drain(&mut s);
        assert_eq!(out, data[..123]);
        assert_eq!(err, Some(io::ErrorKind::ConnectionReset));
    }

    #[test]
    fn fragmentation_preserves_content() {
        let data = bytes(777);
        let plan = FaultPlan::clean(4).fragment_reads(3);
        let mut s = FaultyStream::new(Cursor::new(data.clone()), plan);
        let mut buf = [0u8; 64];
        let n = s.read(&mut buf).unwrap();
        assert!(n <= 3, "fragmented read returned {n}");
        let (rest, err) = drain(&mut s);
        assert_eq!(err, None);
        let mut out = buf[..n].to_vec();
        out.extend(rest);
        assert_eq!(out, data);
    }

    #[test]
    fn drops_are_seed_deterministic() {
        let data = bytes(2000);
        let plan = FaultPlan::clean(5).drop_rate(0.25);
        let run = || {
            let mut s = FaultyStream::new(Cursor::new(data.clone()), plan);
            drain(&mut s).0
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same surviving bytes");
        assert!(a.len() < data.len(), "some bytes must drop at rate 0.25");
        assert!(!a.is_empty(), "most bytes must survive at rate 0.25");
    }

    #[test]
    fn write_disconnect_fires_at_budget() {
        let plan = FaultPlan::clean(6).disconnect_write_at(10);
        let mut s = FaultyStream::new(Cursor::new(Vec::new()), plan);
        let mut written = 0usize;
        let err = loop {
            match s.write(&bytes(4)) {
                Ok(n) => written += n,
                Err(e) => break e,
            }
        };
        assert_eq!(written, 10, "exactly the budget is accepted");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(s.into_inner().into_inner().len(), 10);
    }

    // ---- datagram faults ----

    /// A bound faulty socket plus a plain sender aimed at it.
    fn socket_pair(faults: DatagramFaults) -> (FaultySocket, UdpSocket, SocketAddr) {
        let inner = UdpSocket::bind("127.0.0.1:0").expect("bind receiver");
        let socket = FaultySocket::new(inner, faults).expect("wrap");
        socket.set_read_timeout(Some(Duration::from_millis(40))).expect("timeout");
        let sender = UdpSocket::bind("127.0.0.1:0").expect("bind sender");
        let to = socket.local_addr().expect("addr");
        (socket, sender, to)
    }

    /// Sends `n` numbered datagrams, then drains the receiver until it
    /// stays quiet, returning the delivered sequence numbers in order.
    fn pump_datagrams(socket: &FaultySocket, sender: &UdpSocket, to: SocketAddr, n: u8) -> Vec<u8> {
        for i in 0..n {
            sender.send_to(&[i], to).expect("send");
            // Loopback preserves order for a single sender; the tiny gap
            // keeps the receive path from coalescing visible timing.
            thread::sleep(Duration::from_micros(300));
        }
        let mut seen = Vec::new();
        let mut buf = [0u8; 16];
        let mut quiet = 0;
        while quiet < 3 {
            let before = std::time::Instant::now();
            match socket.recv_from(&mut buf) {
                Ok((1, _)) => seen.push(buf[0]),
                Ok(_) => panic!("unexpected datagram length"),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // A synthetic WouldBlock (drop, fresh hold) returns
                    // instantly; only a real timeout means the link is
                    // actually quiet.
                    if before.elapsed() >= Duration::from_millis(30) {
                        quiet += 1;
                    }
                }
                Err(e) => panic!("recv failed: {e}"),
            }
        }
        seen
    }

    #[test]
    fn clean_datagram_plan_is_the_identity() {
        let (socket, sender, to) = socket_pair(DatagramFaults::clean(1));
        let seen = pump_datagrams(&socket, &sender, to, 20);
        assert_eq!(seen, (0..20).collect::<Vec<u8>>());
        assert_eq!(socket.fault_counters(), DatagramFaultCounters::default());
    }

    #[test]
    fn full_drop_rate_delivers_nothing_and_counts() {
        let faults = DatagramFaults::inbound(DatagramFaultPlan::clean(2).drop_rate(1.0));
        let (socket, sender, to) = socket_pair(faults);
        let seen = pump_datagrams(&socket, &sender, to, 10);
        assert!(seen.is_empty(), "drop_rate 1.0 must drop everything, got {seen:?}");
        assert_eq!(socket.fault_counters().dropped_in, 10);
    }

    #[test]
    fn full_duplicate_rate_delivers_everything_twice() {
        let faults = DatagramFaults::inbound(DatagramFaultPlan::clean(3).duplicate_rate(1.0));
        let (socket, sender, to) = socket_pair(faults);
        let seen = pump_datagrams(&socket, &sender, to, 5);
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 0, 1, 1, 2, 2, 3, 3, 4, 4], "each datagram twice: {seen:?}");
        assert_eq!(socket.fault_counters().duplicated_in, 5);
    }

    #[test]
    fn reordering_permutes_within_the_window_and_loses_nothing() {
        let faults = DatagramFaults::inbound(DatagramFaultPlan::clean(4).reorder(0.5, 4));
        let (socket, sender, to) = socket_pair(faults);
        let n = 40u8;
        let seen = pump_datagrams(&socket, &sender, to, n);
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<u8>>(), "reorder must not lose datagrams");
        assert!(seen != (0..n).collect::<Vec<u8>>(), "something must be out of order");
        assert!(socket.fault_counters().reordered_in > 0);
        // Window bound: a datagram may be displaced by at most window + the
        // ready-queue backlog; with window 4 a displacement of n would mean
        // a datagram was stranded until the end.
        for (position, &seq) in seen.iter().enumerate() {
            assert!(
                (position as i64 - seq as i64).abs() <= 2 * 4,
                "seq {seq} displaced to position {position}: outside the window"
            );
        }
    }

    #[test]
    fn datagram_drops_are_seed_deterministic() {
        let run = |seed: u64| {
            let plan = DatagramFaultPlan::clean(seed).drop_rate(0.4).duplicate_rate(0.2);
            let (socket, sender, to) = socket_pair(DatagramFaults::inbound(plan));
            pump_datagrams(&socket, &sender, to, 50)
        };
        let a = run(99);
        let b = run(99);
        let c = run(100);
        assert_eq!(a, b, "same seed, same surviving datagrams");
        assert_ne!(a, c, "different seed, different pattern");
        assert!(a.len() < 60, "rate 0.4 must drop something");
        assert!(!a.is_empty(), "rate 0.4 must keep something");
    }

    #[test]
    fn outbound_faults_apply_on_send() {
        let receiver = UdpSocket::bind("127.0.0.1:0").expect("bind receiver");
        receiver.set_read_timeout(Some(Duration::from_millis(40))).expect("timeout");
        let to = receiver.local_addr().expect("addr");
        let inner = UdpSocket::bind("127.0.0.1:0").expect("bind sender");
        let faults = DatagramFaults {
            inbound: DatagramFaultPlan::clean(5),
            outbound: DatagramFaultPlan::clean(5).drop_rate(1.0),
        };
        let socket = FaultySocket::new(inner, faults).expect("wrap");
        for i in 0..8u8 {
            // The drop is silent: the caller sees a normal send.
            assert_eq!(socket.send_to(&[i], to).expect("send"), 1);
        }
        let mut buf = [0u8; 16];
        assert!(receiver.recv_from(&mut buf).is_err(), "all sends dropped on the wire");
        assert_eq!(socket.fault_counters().dropped_out, 8);
    }

    #[test]
    fn held_outbound_datagrams_flush_on_idle_and_on_drop() {
        let receiver = UdpSocket::bind("127.0.0.1:0").expect("bind receiver");
        receiver.set_read_timeout(Some(Duration::from_millis(200))).expect("timeout");
        let to = receiver.local_addr().expect("addr");
        let drain = || {
            let mut got = Vec::new();
            let mut buf = [0u8; 16];
            while let Ok((1, _)) = receiver.recv_from(&mut buf) {
                got.push(buf[0]);
            }
            got.sort_unstable();
            got
        };
        let faults = DatagramFaults {
            inbound: DatagramFaultPlan::clean(7),
            // Hold *every* send: without a flush path, stopping sending
            // would strand all of them.
            outbound: DatagramFaultPlan::clean(7).reorder(1.0, 8),
        };

        // Case 1: the node's own reader observes an idle link → flush.
        let socket =
            FaultySocket::new(UdpSocket::bind("127.0.0.1:0").expect("bind"), faults).expect("wrap");
        socket.set_read_timeout(Some(Duration::from_millis(20))).expect("timeout");
        for i in 0..5u8 {
            socket.send_to(&[i], to).expect("send");
        }
        let mut buf = [0u8; 16];
        let _ = socket.recv_from(&mut buf); // times out → idle flush
        assert_eq!(drain(), vec![0, 1, 2, 3, 4], "idle reader must flush held sends");

        // Case 2: no reader at all — dropping the handle flushes.
        let socket =
            FaultySocket::new(UdpSocket::bind("127.0.0.1:0").expect("bind"), faults).expect("wrap");
        for i in 5..9u8 {
            socket.send_to(&[i], to).expect("send");
        }
        drop(socket);
        assert_eq!(drain(), vec![5, 6, 7, 8], "drop must flush held sends");
    }

    #[test]
    fn link_plans_shadow_the_default_per_origin() {
        // Default plan clean; one sender gets a dedicated always-drop
        // link plan — its datagrams die (and are tallied per link), the
        // other sender's pass untouched.
        let (socket, doomed, to) = socket_pair(DatagramFaults::clean(11));
        let fine = UdpSocket::bind("127.0.0.1:0").expect("bind second sender");
        socket.set_link_plan(
            doomed.local_addr().expect("addr"),
            DatagramFaultPlan::clean(12).drop_rate(1.0),
        );

        let mut buf = [0u8; 16];
        for i in 0..6u8 {
            doomed.send_to(&[i], to).expect("send doomed");
            fine.send_to(&[0x40 + i], to).expect("send fine");
        }
        let mut seen = Vec::new();
        let mut quiet = 0;
        while quiet < 3 {
            let before = std::time::Instant::now();
            match socket.recv_from(&mut buf) {
                Ok((1, _)) => seen.push(buf[0]),
                Ok(_) => panic!("unexpected datagram length"),
                Err(_) if before.elapsed() >= Duration::from_millis(30) => quiet += 1,
                Err(_) => {}
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0x40..0x46).collect::<Vec<u8>>(), "only the clean link delivers");

        let links = socket.link_counters();
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].0, doomed.local_addr().expect("addr"));
        assert_eq!(links[0].1.dropped_in, 6, "link tally attributes the drops");
        assert_eq!(socket.fault_counters().dropped_in, 6, "totals include link faults");
    }

    #[test]
    fn link_reordering_releases_held_datagrams_on_idle() {
        // A link plan that holds everything: the idle-release path must
        // still hand the datagrams to the caller eventually.
        let (socket, sender, to) = socket_pair(DatagramFaults::clean(13));
        socket.set_link_plan(
            sender.local_addr().expect("addr"),
            DatagramFaultPlan::clean(14).reorder(1.0, 4),
        );
        let seen = pump_datagrams(&socket, &sender, to, 10);
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<u8>>(), "per-link reorder must not lose");
        assert!(socket.link_counters()[0].1.reordered_in > 0);
    }

    #[test]
    fn clones_share_fault_state_and_counters() {
        let faults = DatagramFaults::inbound(DatagramFaultPlan::clean(6).drop_rate(1.0));
        let (socket, sender, to) = socket_pair(faults);
        let clone = socket.try_clone().expect("clone");
        sender.send_to(&[1], to).expect("send");
        thread::sleep(Duration::from_millis(5));
        let mut buf = [0u8; 16];
        assert!(clone.recv_from(&mut buf).is_err(), "clone drops too");
        assert_eq!(socket.fault_counters().dropped_in, 1, "counters are shared");
    }

    // ---- nonblocking / edge-triggered API ----

    /// Drains `socket.try_recv_from` until it reports an empty buffer,
    /// returning the delivered sequence numbers in order.
    fn drain_nonblocking(socket: &FaultySocket) -> Vec<u8> {
        let mut seen = Vec::new();
        let mut buf = [0u8; 16];
        while let Some((len, _)) = socket.try_recv_from(&mut buf).expect("try_recv") {
            assert_eq!(len, 1, "unexpected datagram length");
            seen.push(buf[0]);
        }
        seen
    }

    fn send_numbered(sender: &UdpSocket, to: SocketAddr, n: u8) {
        for i in 0..n {
            sender.send_to(&[i], to).expect("send");
            thread::sleep(Duration::from_micros(300));
        }
        // Give loopback delivery a beat so one drain sees everything.
        thread::sleep(Duration::from_millis(5));
    }

    #[test]
    fn try_recv_skips_past_consumed_datagrams_in_one_drain() {
        // Regression for the edge-triggered hazard: the blocking API
        // surfaces a *synthetic* WouldBlock when the plan eats a
        // datagram. An ET caller treating that as "buffer empty" would
        // stop draining and strand everything queued behind the drop
        // until the next readiness edge — which never comes. The
        // nonblocking API must keep pulling instead.
        let faults = DatagramFaults::inbound(DatagramFaultPlan::clean(21).drop_rate(0.4));
        let (socket, sender, to) = socket_pair(faults);
        socket.set_nonblocking(true).expect("nonblocking");
        send_numbered(&sender, to, 30);
        let seen = drain_nonblocking(&socket);
        let dropped = socket.fault_counters().dropped_in as usize;
        assert!(dropped > 0, "rate 0.4 over 30 datagrams must drop some");
        assert_eq!(seen.len(), 30 - dropped, "one drain must deliver every survivor");
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "survivors stay in order");
    }

    #[test]
    fn idle_release_under_edge_triggered_polling() {
        // Reorder-held datagrams have no read-timeout path to escape on
        // a nonblocking socket: the caller must see them via
        // has_held_datagrams() and free them with release_held().
        let (socket, sender, to) = socket_pair(DatagramFaults::clean(22));
        socket.set_link_plan(
            sender.local_addr().expect("addr"),
            DatagramFaultPlan::clean(23).reorder(1.0, 8),
        );
        socket.set_nonblocking(true).expect("nonblocking");
        assert!(!socket.has_held_datagrams(), "nothing held before traffic");

        send_numbered(&sender, to, 4);
        let seen = drain_nonblocking(&socket);
        assert!(seen.is_empty(), "an always-hold window of 8 parks all 4 datagrams");
        assert!(socket.has_held_datagrams(), "the drain must leave the holds visible");

        socket.release_held();
        let mut released = drain_nonblocking(&socket);
        released.sort_unstable();
        assert_eq!(released, (0..4).collect::<Vec<u8>>(), "release frees every held datagram");
        assert!(!socket.has_held_datagrams());
    }

    #[test]
    fn release_held_flushes_outbound_holds_too() {
        // Symmetric always-hold plan; only the outbound side sees
        // traffic in this test.
        let outbound = DatagramFaults::symmetric(DatagramFaultPlan::clean(24).reorder(1.0, 8));
        let inner = UdpSocket::bind("127.0.0.1:0").expect("bind");
        let socket = FaultySocket::new(inner, outbound).expect("wrap");
        let receiver = UdpSocket::bind("127.0.0.1:0").expect("bind receiver");
        receiver.set_read_timeout(Some(Duration::from_millis(200))).expect("timeout");

        let to = receiver.local_addr().expect("addr");
        socket.send_to(b"held", to).expect("send");
        assert!(socket.has_held_datagrams(), "the datagram must be parked outbound");
        socket.release_held();
        assert!(!socket.has_held_datagrams());
        let mut buf = [0u8; 16];
        let (len, _) = receiver.recv_from(&mut buf).expect("released datagram arrives");
        assert_eq!(&buf[..len], b"held");
    }

    #[test]
    fn nonblocking_flag_is_shared_across_clones() {
        // The O_NONBLOCK flag lives on the shared file description:
        // flipping it via one handle must flip the clone too, which is
        // why a poll-driven socket must never be mixed with blocking
        // readers.
        let (socket, _sender, _to) = socket_pair(DatagramFaults::clean(25));
        let clone = socket.try_clone().expect("clone");
        socket.set_nonblocking(true).expect("nonblocking");
        let mut buf = [0u8; 16];
        let start = std::time::Instant::now();
        assert!(clone.try_recv_from(&mut buf).expect("try_recv").is_none());
        assert!(
            start.elapsed() < Duration::from_millis(30),
            "the clone must return instantly, not wait out the read timeout"
        );
    }

    #[test]
    fn try_recv_matches_blocking_delivery_for_a_clean_plan() {
        let (socket, sender, to) = socket_pair(DatagramFaults::clean(26));
        socket.set_nonblocking(true).expect("nonblocking");
        send_numbered(&sender, to, 12);
        assert_eq!(drain_nonblocking(&socket), (0..12).collect::<Vec<u8>>());
        assert_eq!(socket.fault_counters(), DatagramFaultCounters::default());
    }
}
