//! Deterministic fault injection for transport tests.
//!
//! Every transport test in this workspace used to run over clean
//! localhost sockets, which exercises none of the failure handling the
//! protocol exists for. This module makes adverse conditions *seeded and
//! reproducible*:
//!
//! * [`FaultyStream`] wraps any `Read + Write` and injects faults from a
//!   [`FaultPlan`]: per-byte drops, per-call delays, read fragmentation,
//!   a clean truncation (EOF) at byte `K`, and a hard disconnect (error)
//!   at byte `K`. All randomness comes from a [`SmallRng`] seeded by the
//!   plan, so a failing case replays exactly.
//! * [`FaultProxy`] puts the same plans between two real TCP endpoints: a
//!   localhost forwarder that pumps each direction of every accepted
//!   connection through a `FaultyStream`. Integration tests point a
//!   client at the proxy instead of the server and get loss, stalls and
//!   mid-transfer disconnects without touching either endpoint's code.
//!
//! Byte-counted faults (`truncate_read_at`, `disconnect_read_at`) are
//! deterministic regardless of how the OS chunks the stream, which is
//! what makes "kill the server after exactly K bytes" a stable test.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded description of the faults to inject on one stream direction.
///
/// The default plan (via [`FaultPlan::clean`]) forwards bytes untouched;
/// builder methods switch individual faults on. Plans are `Copy` so a
/// proxy can stamp one onto every accepted connection.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision this plan makes.
    pub seed: u64,
    /// Deliver exactly this many bytes, then report clean EOF forever.
    pub truncate_read_at: Option<u64>,
    /// Deliver exactly this many bytes, then *stall*: every further read
    /// blocks briefly and returns `WouldBlock`, with the stream still
    /// open. Through a proxy this is a peer that stops making progress
    /// without dying — the case progress watermarks exist to catch.
    pub stall_read_at: Option<u64>,
    /// Deliver exactly this many bytes, then fail reads with
    /// `ConnectionReset` forever.
    pub disconnect_read_at: Option<u64>,
    /// Accept exactly this many written bytes, then fail writes with
    /// `BrokenPipe` forever.
    pub disconnect_write_at: Option<u64>,
    /// Probability in `[0, 1]` that each forwarded byte is silently
    /// dropped (stream corruption: the framing layer must error, never
    /// panic).
    pub drop_rate: f64,
    /// Sleep this long before every read call that reaches the inner
    /// stream (a slow peer).
    pub read_delay: Duration,
    /// Cap on bytes returned by a single read call, re-fragmenting the
    /// stream into small pieces (exercises incremental reassembly).
    pub max_read_chunk: Option<usize>,
}

impl FaultPlan {
    /// A plan that forwards everything untouched (the identity proxy).
    #[must_use]
    pub fn clean(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            truncate_read_at: None,
            stall_read_at: None,
            disconnect_read_at: None,
            disconnect_write_at: None,
            drop_rate: 0.0,
            read_delay: Duration::ZERO,
            max_read_chunk: None,
        }
    }

    /// Clean EOF after exactly `bytes` delivered bytes.
    #[must_use]
    pub fn truncate_read_at(mut self, bytes: u64) -> FaultPlan {
        self.truncate_read_at = Some(bytes);
        self
    }

    /// Stall (socket open, no further bytes) after exactly `bytes`
    /// delivered bytes.
    #[must_use]
    pub fn stall_read_at(mut self, bytes: u64) -> FaultPlan {
        self.stall_read_at = Some(bytes);
        self
    }

    /// Hard `ConnectionReset` after exactly `bytes` delivered bytes.
    #[must_use]
    pub fn disconnect_read_at(mut self, bytes: u64) -> FaultPlan {
        self.disconnect_read_at = Some(bytes);
        self
    }

    /// Hard `BrokenPipe` after exactly `bytes` accepted written bytes.
    #[must_use]
    pub fn disconnect_write_at(mut self, bytes: u64) -> FaultPlan {
        self.disconnect_write_at = Some(bytes);
        self
    }

    /// Drop each forwarded byte with probability `rate` (clamped to
    /// `[0, 1]`).
    #[must_use]
    pub fn drop_rate(mut self, rate: f64) -> FaultPlan {
        self.drop_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Delay every read by `delay` (a slow replica).
    #[must_use]
    pub fn delay_reads(mut self, delay: Duration) -> FaultPlan {
        self.read_delay = delay;
        self
    }

    /// Return at most `bytes` per read call.
    #[must_use]
    pub fn fragment_reads(mut self, bytes: usize) -> FaultPlan {
        self.max_read_chunk = Some(bytes.max(1));
        self
    }
}

/// A `Read + Write` wrapper executing a [`FaultPlan`].
///
/// Byte budgets count bytes *delivered to the caller* (after drops), so a
/// `truncate_read_at(K)` cut lands at the same protocol position however
/// the inner stream chunks its reads.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    plan: FaultPlan,
    rng: SmallRng,
    read_delivered: u64,
    write_accepted: u64,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> FaultyStream<S> {
        FaultyStream {
            inner,
            plan,
            rng: SmallRng::seed_from_u64(plan.seed ^ 0xFA_17_5E_ED),
            read_delivered: 0,
            write_accepted: 0,
        }
    }

    /// Bytes delivered to the reader so far (after drops and cuts).
    #[must_use]
    pub fn read_delivered(&self) -> u64 {
        self.read_delivered
    }

    /// Bytes accepted from the writer so far.
    #[must_use]
    pub fn write_accepted(&self) -> u64 {
        self.write_accepted
    }

    /// Consumes the wrapper, returning the inner stream.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// How many more bytes may be delivered before a read-side cut fires.
    fn read_budget(&self) -> Option<u64> {
        let cut =
            [self.plan.truncate_read_at, self.plan.stall_read_at, self.plan.disconnect_read_at]
                .into_iter()
                .flatten()
                .min();
        cut.map(|k| k.saturating_sub(self.read_delivered))
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if let Some(0) = self.read_budget() {
            if let Some(k) = self.plan.truncate_read_at {
                if self.read_delivered >= k {
                    return Ok(0); // clean truncation
                }
            }
            if let Some(k) = self.plan.stall_read_at {
                if self.read_delivered >= k {
                    // The peer is alive but mute: block a beat, make no
                    // progress, keep the stream open.
                    thread::sleep(Duration::from_millis(20));
                    return Err(io::Error::new(
                        io::ErrorKind::WouldBlock,
                        "fault injection: stall_read_at reached",
                    ));
                }
            }
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "fault injection: disconnect_read_at reached",
            ));
        }
        let mut limit = buf.len();
        if let Some(chunk) = self.plan.max_read_chunk {
            limit = limit.min(chunk);
        }
        if let Some(budget) = self.read_budget() {
            limit = limit.min(budget.try_into().unwrap_or(usize::MAX)).max(1);
        }
        if !self.plan.read_delay.is_zero() {
            thread::sleep(self.plan.read_delay);
        }
        let n = self.inner.read(&mut buf[..limit])?;
        if n == 0 {
            return Ok(0);
        }
        let delivered = if self.plan.drop_rate > 0.0 {
            // Retain each byte independently; compact in place.
            let mut kept = 0;
            for i in 0..n {
                if self.rng.gen_bool(1.0 - self.plan.drop_rate) {
                    buf[kept] = buf[i];
                    kept += 1;
                }
            }
            kept
        } else {
            n
        };
        self.read_delivered += delivered as u64;
        if delivered == 0 {
            // Every byte of this chunk was dropped; the caller sees a
            // spurious-wakeup-style empty read rather than EOF.
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "fault injection: chunk dropped",
            ));
        }
        Ok(delivered)
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some(k) = self.plan.disconnect_write_at {
            if self.write_accepted >= k {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "fault injection: disconnect_write_at reached",
                ));
            }
            let budget = (k - self.write_accepted).try_into().unwrap_or(usize::MAX);
            let n = self.inner.write(&buf[..buf.len().min(budget.max(1))])?;
            self.write_accepted += n as u64;
            return Ok(n);
        }
        let n = self.inner.write(buf)?;
        self.write_accepted += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A localhost TCP forwarder injecting faults between real endpoints.
///
/// Each accepted client connection is paired with a fresh upstream
/// connection; two pump threads copy bytes in each direction, the
/// client→server direction through `client_to_server`, the
/// server→client direction through `server_to_client`. When a pump sees
/// EOF or an injected error it shuts down *both* sockets, so a
/// `disconnect_read_at` on one side looks like a dead peer to both.
pub struct FaultProxy {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Spawns a proxy on an ephemeral localhost port forwarding to
    /// `upstream`. Every accepted connection gets its own copy of the two
    /// plans (same seed: connection-for-connection reproducible).
    ///
    /// # Errors
    ///
    /// Socket errors binding the listener.
    pub fn spawn(
        upstream: SocketAddr,
        client_to_server: FaultPlan,
        server_to_client: FaultPlan,
    ) -> io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = thread::spawn(move || {
            let mut pumps: Vec<JoinHandle<()>> = Vec::new();
            while !accept_stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((client, _)) => {
                        match TcpStream::connect(upstream) {
                            Ok(server) => {
                                pumps.extend(pump_pair(
                                    client,
                                    server,
                                    client_to_server,
                                    server_to_client,
                                    Arc::clone(&accept_stop),
                                ));
                            }
                            Err(_) => drop(client), // upstream dead: refuse
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => {}
                }
            }
            for pump in pumps {
                let _ = pump.join();
            }
        });
        Ok(FaultProxy { local_addr, stop, accept_thread: Some(accept_thread) })
    }

    /// The address clients should connect to instead of the upstream.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting and joins the forwarding threads. Called by `Drop`
    /// as well; explicit shutdown just surfaces panics earlier.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Spawns the two directional pumps of one proxied connection.
fn pump_pair(
    client: TcpStream,
    server: TcpStream,
    client_to_server: FaultPlan,
    server_to_client: FaultPlan,
    stop: Arc<AtomicBool>,
) -> Vec<JoinHandle<()>> {
    let pair = || -> io::Result<_> {
        // Short read timeouts keep every pump responsive to `stop` (so a
        // stalled connection cannot hang proxy shutdown) and to peer EOF,
        // which should propagate promptly.
        client.set_read_timeout(Some(Duration::from_millis(20)))?;
        server.set_read_timeout(Some(Duration::from_millis(20)))?;
        let c_read = client.try_clone()?;
        let s_read = server.try_clone()?;
        Ok((c_read, s_read))
    };
    let Ok((c_read, s_read)) = pair() else {
        return Vec::new();
    };
    let up_stop = Arc::clone(&stop);
    let up = thread::spawn(move || {
        pump(FaultyStream::new(c_read, client_to_server), server, &up_stop);
    });
    let down = thread::spawn(move || {
        pump(FaultyStream::new(s_read, server_to_client), client, &stop);
    });
    vec![up, down]
}

/// Copies `from` into `to` until EOF, any error, or `stop`, then severs
/// both ends.
fn pump<S: Read>(mut from: FaultyStream<S>, mut to: TcpStream, stop: &AtomicBool) {
    let mut buf = [0u8; 4096];
    while !stop.load(Ordering::Acquire) {
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    // One direction dying kills the whole proxied connection: a half-dead
    // replica should look dead, not half-alive.
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn bytes(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 7 % 251) as u8).collect()
    }

    fn drain(stream: &mut FaultyStream<Cursor<Vec<u8>>>) -> (Vec<u8>, Option<io::ErrorKind>) {
        let mut out = Vec::new();
        let mut buf = [0u8; 33];
        loop {
            match stream.read(&mut buf) {
                Ok(0) => return (out, None),
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(e) => return (out, Some(e.kind())),
            }
        }
    }

    #[test]
    fn clean_plan_is_the_identity() {
        let data = bytes(1000);
        let mut s = FaultyStream::new(Cursor::new(data.clone()), FaultPlan::clean(1));
        let (out, err) = drain(&mut s);
        assert_eq!(out, data);
        assert_eq!(err, None);
    }

    #[test]
    fn truncation_delivers_exactly_k_bytes_then_eof() {
        let data = bytes(500);
        for k in [0u64, 1, 37, 499, 500, 900] {
            let plan = FaultPlan::clean(2).truncate_read_at(k);
            let mut s = FaultyStream::new(Cursor::new(data.clone()), plan);
            let (out, err) = drain(&mut s);
            let expect = (k as usize).min(data.len());
            assert_eq!(out, data[..expect], "k = {k}");
            assert_eq!(err, None, "truncation is a clean EOF");
        }
    }

    #[test]
    fn disconnect_delivers_exactly_k_bytes_then_errors() {
        let data = bytes(500);
        let plan = FaultPlan::clean(3).disconnect_read_at(123);
        let mut s = FaultyStream::new(Cursor::new(data.clone()), plan);
        let (out, err) = drain(&mut s);
        assert_eq!(out, data[..123]);
        assert_eq!(err, Some(io::ErrorKind::ConnectionReset));
    }

    #[test]
    fn fragmentation_preserves_content() {
        let data = bytes(777);
        let plan = FaultPlan::clean(4).fragment_reads(3);
        let mut s = FaultyStream::new(Cursor::new(data.clone()), plan);
        let mut buf = [0u8; 64];
        let n = s.read(&mut buf).unwrap();
        assert!(n <= 3, "fragmented read returned {n}");
        let (rest, err) = drain(&mut s);
        assert_eq!(err, None);
        let mut out = buf[..n].to_vec();
        out.extend(rest);
        assert_eq!(out, data);
    }

    #[test]
    fn drops_are_seed_deterministic() {
        let data = bytes(2000);
        let plan = FaultPlan::clean(5).drop_rate(0.25);
        let run = || {
            let mut s = FaultyStream::new(Cursor::new(data.clone()), plan);
            drain(&mut s).0
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same surviving bytes");
        assert!(a.len() < data.len(), "some bytes must drop at rate 0.25");
        assert!(!a.is_empty(), "most bytes must survive at rate 0.25");
    }

    #[test]
    fn write_disconnect_fires_at_budget() {
        let plan = FaultPlan::clean(6).disconnect_write_at(10);
        let mut s = FaultyStream::new(Cursor::new(Vec::new()), plan);
        let mut written = 0usize;
        let err = loop {
            match s.write(&bytes(4)) {
                Ok(n) => written += n,
                Err(e) => break e,
            }
        };
        assert_eq!(written, 10, "exactly the budget is accepted");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(s.into_inner().into_inner().len(), 10);
    }
}
