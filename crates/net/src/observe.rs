//! The swarm-level observability plane: reactor instrumentation, the
//! aggregated scrape registry, and the stall-triggered flight recorder.
//!
//! Per-node scrape endpoints ([`crate::NodeOptions::metrics_bind`]) do
//! not scale to the sharded runtime's 1000-node swarms — a thousand
//! listeners for one experiment. This module gives a swarm *one*
//! endpoint instead ([`crate::SwarmConfig::metrics_bind`]):
//!
//! * [`SwarmTelemetry`] implements [`ShardObserver`], turning the
//!   reactor's scheduler callbacks into one [`ReactorCounters`] per
//!   worker shard (and, when the flight recorder is on, a bounded
//!   [`RingSink`] of scheduler [`TraceEvent`]s per shard);
//! * [`swarm_registry`] builds the aggregated [`MetricsRegistry`]: the
//!   `reactor` family per shard under a `shard="<index>"` label, one
//!   rolled-up `wire` family summed across every node, merged
//!   hop-latency histograms, and a `decoder` progress family
//!   (per-generation aggregate rank, innovative ratio);
//! * [`FlightState`] renders the post-mortem document: recent scheduler
//!   events, per-shard counter snapshots and the stuck nodes' decoder
//!   state, cut on stall detection, shutdown timeout, or on demand via
//!   the endpoint's `/flight` route.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ltnc_metrics::{LogHistogramSnapshot, ReactorCounters, ReactorSnapshot, WireCounters};
use ltnc_reactor::{Dispatch, ShardObserver};
use ltnc_telemetry::json::{JsonValue, REPORT_SCHEMA_VERSION};
use ltnc_telemetry::{
    reactor_histograms, reactor_samples, wire_samples, HistogramSample, MetricsRegistry, RingSink,
    Sample, TimedEvent, TraceEvent, Tracer,
};

use crate::peer::Shared;

/// Timer lag below this is normal wheel-granularity noise; only lags at
/// or past it earn a `timer_fired` flight-recorder event (the histogram
/// records every lag regardless).
const LATE_TIMER_LAG: Duration = Duration::from_millis(10);

/// One `shard_tick` heartbeat event per this many loop turns — enough
/// to read a shard's last-alive time off the recorder without the
/// heartbeat flooding the bounded ring.
const TICK_SAMPLE_EVERY: u64 = 64;

/// Per-node detail entries a flight dump carries at most, so a
/// 1000-node post-mortem stays readable; the omitted count is recorded
/// alongside.
const DUMP_NODE_CAP: usize = 64;

fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn millis(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

/// One worker shard's instrumentation state.
struct ShardState {
    counters: Arc<ReactorCounters>,
    /// Flight-recorder ring; `None` when the recorder is off (metrics
    /// only).
    ring: Option<Arc<RingSink>>,
    tracer: Tracer,
    /// Local turn counter for heartbeat sampling (the `ReactorCounters`
    /// field is not readable without a full snapshot).
    turns: AtomicU64,
}

/// The sharded swarm's [`ShardObserver`]: routes every scheduler
/// callback into the per-shard [`ReactorCounters`] and, when the flight
/// recorder is on, stamps the noteworthy ones (wakeups, queue
/// high-watermarks, late timers, sampled heartbeats) into the shard's
/// bounded event ring.
pub(crate) struct SwarmTelemetry {
    shards: Vec<ShardState>,
}

impl SwarmTelemetry {
    /// Instrumentation for `workers` shards; `flight_capacity` sizes the
    /// per-shard event rings (`None` keeps counters only).
    pub(crate) fn new(workers: usize, flight_capacity: Option<usize>) -> SwarmTelemetry {
        let shards = (0..workers.max(1))
            .map(|_| {
                let ring = flight_capacity.map(|capacity| Arc::new(RingSink::new(capacity)));
                let tracer = Tracer::from_option(ring.clone().map(|ring| ring as _));
                ShardState {
                    counters: Arc::new(ReactorCounters::new()),
                    ring,
                    tracer,
                    turns: AtomicU64::new(0),
                }
            })
            .collect();
        SwarmTelemetry { shards }
    }

    pub(crate) fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Shared handles onto every shard's counters (for registry
    /// collectors and report rollups).
    pub(crate) fn shard_counters(&self) -> Vec<Arc<ReactorCounters>> {
        self.shards.iter().map(|state| Arc::clone(&state.counters)).collect()
    }

    /// Seeds each shard's node-count gauge for the reactor's round-robin
    /// partition of `node_count` nodes (global node `g` lands on shard
    /// `g % workers`).
    pub(crate) fn set_node_counts(&self, node_count: usize) {
        let workers = self.shards.len();
        for (shard, state) in self.shards.iter().enumerate() {
            state.counters.set_nodes(((node_count + workers - 1 - shard) / workers) as u64);
        }
    }

    /// A point-in-time snapshot of every shard's counters, shard-indexed.
    pub(crate) fn snapshots(&self) -> Vec<ReactorSnapshot> {
        self.shards.iter().map(|state| state.counters.snapshot()).collect()
    }

    /// The shard's recent flight events plus its ring's drop count
    /// (`None` when the recorder is off). Non-draining: dumping twice
    /// sees the same history.
    fn shard_events(&self, shard: usize) -> Option<(Vec<TimedEvent>, u64)> {
        let ring = self.shards.get(shard)?.ring.as_ref()?;
        Some((ring.events(), ring.dropped()))
    }

    /// Stamps a `stall_detected` event into every shard's flight ring —
    /// the watchdog's mark, placed just before the dump is cut so the
    /// dump itself contains it.
    pub(crate) fn note_stall(&self, idle: Duration) {
        let idle_ms = millis(idle);
        for (shard, state) in self.shards.iter().enumerate() {
            state.tracer.emit(|| TraceEvent::StallDetected { shard: shard as u64, idle_ms });
        }
    }
}

impl ShardObserver for SwarmTelemetry {
    fn poll_completed(&self, shard: usize, waited: Duration, events: usize) {
        if let Some(state) = self.shards.get(shard) {
            state.counters.record_poll(micros(waited), events as u64);
        }
    }

    fn wakeups_drained(&self, shard: usize, coalesced: usize) {
        let Some(state) = self.shards.get(shard) else { return };
        state.counters.record_wakeups(coalesced as u64);
        if coalesced > 0 {
            state
                .tracer
                .emit(|| TraceEvent::Wakeup { shard: shard as u64, coalesced: coalesced as u64 });
        }
    }

    fn control_drained(&self, shard: usize, messages: usize) {
        let Some(state) = self.shards.get(shard) else { return };
        if state.counters.record_control_drain(messages as u64) {
            state.tracer.emit(|| TraceEvent::QueueHighWatermark {
                shard: shard as u64,
                depth: messages as u64,
            });
        }
    }

    fn dispatched(&self, shard: usize, kind: Dispatch, took: Duration) {
        let Some(state) = self.shards.get(shard) else { return };
        let ns = nanos(took);
        match kind {
            Dispatch::Readable => state.counters.record_dispatch_readable(ns),
            Dispatch::Timer => state.counters.record_dispatch_timer(ns),
            Dispatch::Control => state.counters.record_dispatch_control(ns),
        }
    }

    fn timer_lag(&self, shard: usize, lag: Duration) {
        let Some(state) = self.shards.get(shard) else { return };
        state.counters.record_timer_lag(micros(lag));
        if lag >= LATE_TIMER_LAG {
            state
                .tracer
                .emit(|| TraceEvent::TimerFired { shard: shard as u64, lag_us: micros(lag) });
        }
    }

    fn turn_completed(&self, shard: usize, timers_pending: usize) {
        let Some(state) = self.shards.get(shard) else { return };
        state.counters.record_turn(timers_pending as u64);
        let turns = state.turns.fetch_add(1, Ordering::Relaxed) + 1;
        if turns % TICK_SAMPLE_EVERY == 1 {
            state.tracer.emit(|| TraceEvent::ShardTick {
                shard: shard as u64,
                wheel_depth: timers_pending as u64,
            });
        }
    }
}

/// Builds the swarm-wide aggregated registry behind the one
/// [`crate::SwarmConfig::metrics_bind`] endpoint: a rolled-up `wire`
/// family (counters summed across every node, hop-latency histograms
/// merged), a `decoder` progress family, and — when the sharded runtime
/// provides `telemetry` — a `reactor` family per shard under a
/// `shard="<index>"` label.
pub(crate) fn swarm_registry(
    completion: &[Arc<Shared>],
    generations: u32,
    telemetry: Option<&SwarmTelemetry>,
) -> MetricsRegistry {
    let registry = MetricsRegistry::new();

    let shareds = completion.to_vec();
    registry.register("wire", &[], move || {
        let mut total = WireCounters::new();
        for shared in &shareds {
            total.merge(&shared.wire_snapshot());
        }
        wire_samples(&total)
    });

    let shareds = completion.to_vec();
    registry.register_histograms("wire", &[], move || {
        let mut total = LogHistogramSnapshot::empty();
        let mut by_hop: BTreeMap<usize, LogHistogramSnapshot> = BTreeMap::new();
        for shared in &shareds {
            for (hops, snapshot) in shared.latency.snapshot() {
                total.merge(&snapshot);
                by_hop.entry(hops).or_insert_with(LogHistogramSnapshot::empty).merge(&snapshot);
            }
        }
        let mut samples = Vec::new();
        if !total.is_empty() {
            samples.push(HistogramSample::plain("delivery_latency_us", total));
        }
        for (hops, snapshot) in by_hop {
            samples.push(HistogramSample {
                name: "delivery_latency_us",
                labels: vec![("hops", hops.to_string())],
                snapshot,
            });
        }
        samples
    });

    let shareds = completion.to_vec();
    registry.register("decoder", &[], move || decoder_samples(&shareds, generations));

    if let Some(telemetry) = telemetry {
        for (shard, counters) in telemetry.shard_counters().into_iter().enumerate() {
            let labels = [("shard", shard.to_string())];
            let source = Arc::clone(&counters);
            registry.register("reactor", &labels, move || reactor_samples(&source.snapshot()));
            registry.register_histograms("reactor", &labels, move || {
                reactor_histograms(&counters.snapshot())
            });
        }
    }
    registry
}

/// Decoder-progress gauges over every node's shared state: completion
/// counts, total innovative symbols, per-generation aggregate rank
/// (from the per-tick published mirrors) and the innovative ratio in
/// parts per million of delivered transfers. The source (node 0) is
/// excluded — it decodes nothing.
fn decoder_samples(shareds: &[Arc<Shared>], generations: u32) -> Vec<Sample> {
    let receivers = shareds.len().saturating_sub(1) as u64;
    let mut nodes_complete = 0u64;
    let mut generations_complete = 0u64;
    let mut decoded_rank = 0u64;
    let mut per_generation = vec![0u64; generations as usize];
    let mut delivered = 0u64;
    let mut useful = 0u64;
    for shared in shareds.iter().skip(1) {
        if shared.complete.load(Ordering::Acquire) {
            nodes_complete += 1;
        }
        generations_complete += shared.complete_generations.load(Ordering::Acquire) as u64;
        decoded_rank += shared.decoded_rank.load(Ordering::Relaxed);
        for (generation, rank) in shared.decoder_ranks().into_iter().enumerate() {
            if let Some(slot) = per_generation.get_mut(generation) {
                *slot += rank;
            }
        }
        let wire = shared.wire_snapshot();
        delivered += wire.transfers_delivered;
        useful += wire.useful_deliveries;
    }
    let innovative_ppm = useful.saturating_mul(1_000_000).checked_div(delivered).unwrap_or(0);
    let mut samples = vec![
        Sample::plain("nodes", receivers),
        Sample::plain("nodes_complete", nodes_complete),
        Sample::plain("generations", u64::from(generations) * receivers),
        Sample::plain("generations_complete", generations_complete),
        Sample::plain("decoded_rank", decoded_rank),
        Sample::plain("innovative_ppm", innovative_ppm),
    ];
    for (generation, rank) in per_generation.into_iter().enumerate() {
        samples.push(Sample {
            name: "rank",
            labels: vec![("generation", generation.to_string())],
            value: rank,
        });
    }
    samples
}

/// Everything the flight recorder needs to cut a post-mortem: the
/// per-shard instrumentation plus every node's shared state. Cheap to
/// clone around (all `Arc`s) and safe to dump from any thread.
#[derive(Clone)]
pub(crate) struct FlightState {
    pub(crate) started: Instant,
    pub(crate) telemetry: Arc<SwarmTelemetry>,
    pub(crate) completion: Vec<Arc<Shared>>,
    pub(crate) stall_window: Duration,
}

impl FlightState {
    /// Renders the schema-stable post-mortem document. `reason` is
    /// `"stall"`, `"shutdown_timeout"` or `"demand"`; `idle` carries the
    /// watchdog's no-progress span when that is what triggered the cut.
    pub(crate) fn dump(&self, reason: &str, idle: Option<Duration>) -> String {
        let workers = self.telemetry.workers();
        let mut doc = JsonValue::object()
            .field("schema_version", REPORT_SCHEMA_VERSION)
            .field("kind", "flight_recorder")
            .field("reason", reason)
            .field("at_ms", millis(self.started.elapsed()))
            .field("workers", workers as u64)
            .field("stall_window_ms", millis(self.stall_window));
        if let Some(idle) = idle {
            doc = doc.field("idle_ms", millis(idle));
        }

        let shards: Vec<JsonValue> = self
            .telemetry
            .snapshots()
            .iter()
            .enumerate()
            .map(|(shard, snapshot)| {
                shard_json(shard, snapshot, self.telemetry.shard_events(shard))
            })
            .collect();
        doc = doc.field("shards", JsonValue::array(shards));

        // Per-node decoder state: post-mortems care about who is stuck,
        // so only incomplete receivers get a detail row (capped).
        let mut stalled = Vec::new();
        let mut omitted = 0u64;
        let mut nodes_complete = 0u64;
        for (index, shared) in self.completion.iter().enumerate().skip(1) {
            if shared.complete.load(Ordering::Acquire) {
                nodes_complete += 1;
                continue;
            }
            if stalled.len() >= DUMP_NODE_CAP {
                omitted += 1;
                continue;
            }
            stalled.push(
                JsonValue::object()
                    .field("node", index as u64)
                    .field("shard", (index % workers.max(1)) as u64)
                    .field(
                        "complete_generations",
                        shared.complete_generations.load(Ordering::Acquire) as u64,
                    )
                    .field("decoded_rank", shared.decoded_rank.load(Ordering::Relaxed))
                    .field("inbound_dropped", shared.inbound_dropped.load(Ordering::Acquire)),
            );
        }
        doc = doc
            .field("nodes", self.completion.len().saturating_sub(1) as u64)
            .field("nodes_complete", nodes_complete)
            .field("stalled_nodes", JsonValue::array(stalled))
            .field("stalled_nodes_omitted", omitted);
        doc.render()
    }
}

/// One shard's section of a flight dump: the counter snapshot, compact
/// histogram summaries, and (when the recorder is on) the ring's recent
/// events oldest-first plus how many older ones the ring dropped.
fn shard_json(
    shard: usize,
    snapshot: &ReactorSnapshot,
    events: Option<(Vec<TimedEvent>, u64)>,
) -> JsonValue {
    let mut doc = JsonValue::object()
        .field("shard", shard as u64)
        .field("nodes", snapshot.nodes)
        .field("turns", snapshot.turns)
        .field("polls", snapshot.polls)
        .field("poll_events", snapshot.poll_events)
        .field("wakeups", snapshot.wakeups)
        .field("wakeup_rounds", snapshot.wakeup_rounds)
        .field("control_messages", snapshot.control_messages)
        .field("control_high_watermark", snapshot.control_high_watermark)
        .field("readable_dispatches", snapshot.readable_dispatches)
        .field("timer_dispatches", snapshot.timer_dispatches)
        .field("control_dispatches", snapshot.control_dispatches)
        .field("timers_fired", snapshot.timers_fired)
        .field("wheel_depth", snapshot.wheel_depth)
        .field("poll_wait_us", histogram_json(&snapshot.poll_wait_us))
        .field("dispatch_ns", histogram_json(&snapshot.dispatch_ns))
        .field("tick_lag_us", histogram_json(&snapshot.tick_lag_us));
    if let Some((events, dropped)) = events {
        doc = doc
            .field("events", JsonValue::array(events.iter().map(event_json).collect()))
            .field("events_dropped", dropped);
    }
    doc
}

/// Compact summary of one histogram (full bucket vectors would dwarf
/// the rest of the dump without aiding a stall diagnosis).
fn histogram_json(snapshot: &LogHistogramSnapshot) -> JsonValue {
    JsonValue::object()
        .field("count", snapshot.count())
        .field("mean", snapshot.mean())
        .field("p50", snapshot.p50())
        .field("p99", snapshot.p99())
        .field("max", snapshot.max)
}

/// One flight-recorder event row: stamp, stable name, and the scheduler
/// variants' numeric payloads. Protocol-level events that end up in a
/// ring keep just their name and stamp — the recorder's story is the
/// scheduler's.
fn event_json(event: &TimedEvent) -> JsonValue {
    let mut doc =
        JsonValue::object().field("at_ms", millis(event.at)).field("event", event.event.name());
    match event.event {
        TraceEvent::ShardTick { shard, wheel_depth } => {
            doc = doc.field("shard", shard).field("wheel_depth", wheel_depth);
        }
        TraceEvent::TimerFired { shard, lag_us } => {
            doc = doc.field("shard", shard).field("lag_us", lag_us);
        }
        TraceEvent::Wakeup { shard, coalesced } => {
            doc = doc.field("shard", shard).field("coalesced", coalesced);
        }
        TraceEvent::QueueHighWatermark { shard, depth } => {
            doc = doc.field("shard", shard).field("depth", depth);
        }
        TraceEvent::StallDetected { shard, idle_ms } => {
            doc = doc.field("shard", shard).field("idle_ms", idle_ms);
        }
        _ => {}
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observer_routes_callbacks_into_the_right_shard() {
        let telemetry = SwarmTelemetry::new(2, Some(16));
        telemetry.set_node_counts(5);
        telemetry.poll_completed(1, Duration::from_micros(300), 2);
        telemetry.wakeups_drained(1, 3);
        telemetry.dispatched(1, Dispatch::Readable, Duration::from_nanos(500));
        telemetry.timer_lag(1, Duration::from_millis(20));
        telemetry.turn_completed(1, 7);
        // Out-of-range shards are ignored, not panicked on.
        telemetry.poll_completed(9, Duration::ZERO, 0);

        let snapshots = telemetry.snapshots();
        assert_eq!(snapshots[0].polls, 0);
        assert_eq!(snapshots[0].nodes, 3, "round-robin puts 3 of 5 nodes on shard 0");
        assert_eq!(snapshots[1].nodes, 2);
        assert_eq!(snapshots[1].polls, 1);
        assert_eq!(snapshots[1].wakeups, 3);
        assert_eq!(snapshots[1].readable_dispatches, 1);
        assert_eq!(snapshots[1].timers_fired, 0, "lag alone is not a dispatch");
        assert_eq!(snapshots[1].turns, 1);
        assert_eq!(snapshots[1].wheel_depth, 7);

        // The late timer and the first-turn heartbeat both hit the ring.
        let (events, dropped) = telemetry.shard_events(1).expect("flight ring exists");
        let names: Vec<&str> = events.iter().map(|e| e.event.name()).collect();
        assert!(names.contains(&"timer_fired"), "late timer must be recorded: {names:?}");
        assert!(names.contains(&"shard_tick"), "first turn emits a heartbeat: {names:?}");
        assert!(names.contains(&"wakeup"), "wakeup drains are recorded: {names:?}");
        assert_eq!(dropped, 0);
    }

    #[test]
    fn registry_rolls_up_wire_and_decoder_families() {
        let shareds = vec![Arc::new(Shared::new()), Arc::new(Shared::new())];
        // Node 1 decoded one generation and published a rank mirror.
        shareds[1].complete_generations.store(1, Ordering::Release);
        shareds[1].decoded_rank.store(4, Ordering::Relaxed);
        *shareds[1].decoder.lock().unwrap() = vec![4, 0];
        shareds[1].latency.record(2, 800);
        if let Ok(mut wire) = shareds[1].wire.lock() {
            wire.transfers_delivered = 8;
            wire.useful_deliveries = 4;
        }

        let telemetry = SwarmTelemetry::new(1, None);
        telemetry.poll_completed(0, Duration::from_micros(10), 1);
        let registry = swarm_registry(&shareds, 2, Some(&telemetry));
        let snapshot = registry.snapshot();

        assert_eq!(snapshot.value("decoder", "decoded_rank"), 4);
        assert_eq!(snapshot.value("decoder", "generations"), 2);
        assert_eq!(snapshot.value("decoder", "generations_complete"), 1);
        assert_eq!(snapshot.value("decoder", "innovative_ppm"), 500_000);
        assert_eq!(snapshot.value("wire", "transfers_delivered"), 8);
        assert_eq!(snapshot.value("reactor", "polls"), 1);

        let text = snapshot.to_prometheus();
        assert!(text.contains("ltnc_reactor_polls{shard=\"0\"} 1"), "missing shard label:\n{text}");
        assert!(text.contains("ltnc_decoder_rank{generation=\"0\"} 4"), "missing rank:\n{text}");
        assert!(
            text.contains("ltnc_wire_delivery_latency_us_bucket"),
            "missing merged latency histogram:\n{text}"
        );
    }

    #[test]
    fn flight_dump_is_parseable_and_lists_stuck_nodes() {
        let telemetry = Arc::new(SwarmTelemetry::new(2, Some(8)));
        telemetry.turn_completed(0, 1);
        telemetry.note_stall(Duration::from_secs(12));
        let completion = vec![Arc::new(Shared::new()), Arc::new(Shared::new())];
        completion[1].decoded_rank.store(9, Ordering::Relaxed);
        let state = FlightState {
            started: Instant::now(),
            telemetry,
            completion,
            stall_window: Duration::from_secs(10),
        };

        let dump = state.dump("stall", Some(Duration::from_secs(12)));
        let doc = JsonValue::parse(&dump).expect("dump parses");
        assert_eq!(doc.get("kind").and_then(JsonValue::as_str), Some("flight_recorder"));
        assert_eq!(doc.get("reason").and_then(JsonValue::as_str), Some("stall"));
        assert_eq!(doc.get("idle_ms").and_then(JsonValue::as_i64), Some(12_000));
        let shards = doc.get("shards").and_then(JsonValue::as_array).expect("shards");
        assert_eq!(shards.len(), 2);
        let events = shards[0].get("events").and_then(JsonValue::as_array).expect("events");
        assert!(
            events
                .iter()
                .any(|e| e.get("event").and_then(JsonValue::as_str) == Some("stall_detected")),
            "stall mark missing from ring: {dump}"
        );
        let stuck = doc.get("stalled_nodes").and_then(JsonValue::as_array).expect("nodes");
        assert_eq!(stuck.len(), 1, "the one incomplete receiver is listed");
        assert_eq!(stuck[0].get("decoded_rank").and_then(JsonValue::as_i64), Some(9));
    }
}
