//! Property tests driving the codec and the stream binding through the
//! fault harness: serving-handshake round-trips under generated fields,
//! and `FrameReassembler` fed by a `FaultyStream` never panicking and
//! never yielding a frame that was not sent.

use std::io::{Cursor, Read};

use ltnc_net::envelope::{
    self, Envelope, EnvelopeHeader, Message, MessageKind, GENERATION_OBJECT, MAX_CODE_LENGTH,
    MAX_PAYLOAD_SIZE,
};
use ltnc_net::faults::{FaultPlan, FaultyStream};
use ltnc_net::stream::FrameReassembler;
use ltnc_net::NetError;
use ltnc_scheme::SchemeKind;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn scheme_from(index: u64) -> SchemeKind {
    SchemeKind::ALL[(index % 3) as usize]
}

/// A deterministic valid multi-frame stream (reuses every message kind).
fn handshake_stream(seed: u64, frames: usize) -> (Vec<Envelope>, Vec<u8>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut envelopes = Vec::with_capacity(frames);
    for _ in 0..frames {
        let scheme = scheme_from(rng.gen::<u64>());
        let (kind, message) = match rng.gen_range(0..6u8) {
            0 => (MessageKind::Request, Message::Request),
            1 => (
                MessageKind::Manifest,
                Message::Manifest {
                    object_len: rng.gen_range(0..1 << 40),
                    code_length: rng.gen_range(1..=MAX_CODE_LENGTH as u32),
                    payload_size: rng.gen_range(1..=MAX_PAYLOAD_SIZE as u32),
                },
            ),
            2 => (MessageKind::Reject, Message::Reject),
            3 => (MessageKind::Complete, Message::Complete),
            4 => (
                MessageKind::FeedbackAccept,
                Message::Feedback { transfer: rng.gen(), accept: true },
            ),
            _ => (
                MessageKind::FeedbackAbort,
                Message::Feedback { transfer: rng.gen(), accept: false },
            ),
        };
        envelopes.push(Envelope {
            header: EnvelopeHeader {
                kind,
                scheme,
                session: rng.gen(),
                generation: if kind == MessageKind::Request {
                    GENERATION_OBJECT
                } else {
                    rng.gen_range(0..64)
                },
            },
            message,
        });
    }
    let bytes = envelopes.iter().flat_map(envelope::encode_envelope).collect();
    (envelopes, bytes)
}

/// Reads `stream` to its end (EOF or injected error), feeding the
/// reassembler, returning the decoded frames and whether framing died.
fn reassemble_through(
    mut stream: FaultyStream<Cursor<Vec<u8>>>,
) -> (Vec<Envelope>, Result<(), NetError>) {
    reassemble_through_ref(&mut stream)
}

/// [`reassemble_through`] over a borrowed stream (so callers can inspect
/// the stream's fault accounting afterwards).
fn reassemble_through_ref(
    stream: &mut FaultyStream<Cursor<Vec<u8>>>,
) -> (Vec<Envelope>, Result<(), NetError>) {
    let mut reassembler = FrameReassembler::new();
    let mut decoded = Vec::new();
    let mut buf = [0u8; 97];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => reassembler.extend(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
            Err(_) => break, // injected disconnect
        }
        loop {
            match reassembler.next_frame() {
                Ok(Some(envelope)) => decoded.push(envelope),
                Ok(None) => break,
                Err(fatal) => return (decoded, Err(fatal)),
            }
        }
    }
    (decoded, Ok(()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// REQUEST/MANIFEST/REJECT (and the rest of the control plane)
    /// round-trip bit-exactly under arbitrary field values.
    #[test]
    fn serving_handshake_roundtrips_under_generated_fields(
        object_id in any::<u64>(),
        scheme_index in any::<u64>(),
        object_len in 0u64..(1 << 40),
        code_length in 1u32..=(MAX_CODE_LENGTH as u32),
        payload_size in 1u32..=(MAX_PAYLOAD_SIZE as u32),
    ) {
        let scheme = scheme_from(scheme_index);
        let request = Envelope {
            header: EnvelopeHeader {
                kind: MessageKind::Request,
                scheme,
                session: object_id,
                generation: GENERATION_OBJECT,
            },
            message: Message::Request,
        };
        let manifest = Envelope {
            header: EnvelopeHeader {
                kind: MessageKind::Manifest,
                scheme,
                session: object_id,
                generation: GENERATION_OBJECT,
            },
            message: Message::Manifest { object_len, code_length, payload_size },
        };
        let reject = Envelope {
            header: EnvelopeHeader {
                kind: MessageKind::Reject,
                scheme,
                session: object_id,
                generation: GENERATION_OBJECT,
            },
            message: Message::Reject,
        };
        for envelope in [request, manifest, reject] {
            let bytes = envelope::encode_envelope(&envelope);
            prop_assert_eq!(envelope::decode(&bytes).unwrap(), envelope);
            prop_assert_eq!(envelope::required_len(&bytes).unwrap(), bytes.len());
        }
    }

    /// Manifest dimensions beyond the safety caps must be rejected, not
    /// allocated.
    #[test]
    fn oversized_manifest_dimensions_error(
        excess in 1u32..1000,
        payload_size in 1u32..4096,
    ) {
        let message = Message::Manifest {
            object_len: 1,
            code_length: 1,
            payload_size,
        };
        let header = EnvelopeHeader {
            kind: MessageKind::Manifest,
            scheme: SchemeKind::Ltnc,
            session: 1,
            generation: GENERATION_OBJECT,
        };
        let mut bytes = envelope::encode(&header, &message);
        let k_at = envelope::ENVELOPE_HEADER_BYTES + 8;
        let hostile = MAX_CODE_LENGTH as u32 + excess;
        bytes[k_at..k_at + 4].copy_from_slice(&hostile.to_le_bytes());
        prop_assert!(matches!(
            envelope::decode(&bytes),
            Err(NetError::FrameTooLarge { .. })
        ));
    }

    /// Truncation at any byte position, under any fragmentation: the
    /// reassembler yields exactly a prefix of the sent frames — never a
    /// corrupt frame, never a panic.
    #[test]
    fn truncated_streams_yield_only_a_clean_prefix(
        seed in any::<u64>(),
        frames in 1usize..16,
        cut in 0usize..2000,
        fragment in 1usize..64,
    ) {
        let (sent, bytes) = handshake_stream(seed, frames);
        let plan = FaultPlan::clean(seed ^ 0x7C)
            .truncate_read_at(cut as u64)
            .fragment_reads(fragment);
        let (decoded, framing) = reassemble_through(FaultyStream::new(Cursor::new(bytes), plan));
        prop_assert!(framing.is_ok(), "truncation is latency, not corruption: {framing:?}");
        prop_assert!(decoded.len() <= sent.len());
        prop_assert_eq!(&decoded[..], &sent[..decoded.len()], "must be an exact prefix");
    }

    /// A mid-stream disconnect behaves identically to truncation from the
    /// reassembler's point of view: a clean prefix, then nothing.
    #[test]
    fn disconnected_streams_yield_only_a_clean_prefix(
        seed in any::<u64>(),
        frames in 1usize..16,
        cut in 0usize..2000,
    ) {
        let (sent, bytes) = handshake_stream(seed, frames);
        let plan = FaultPlan::clean(seed ^ 0xD15C).disconnect_read_at(cut as u64);
        let (decoded, framing) = reassemble_through(FaultyStream::new(Cursor::new(bytes), plan));
        prop_assert!(framing.is_ok());
        prop_assert_eq!(&decoded[..], &sent[..decoded.len()]);
    }

    /// Byte drops corrupt the framing; the reassembler must either keep
    /// decoding or die with a *typed* error — never panic. (The envelope
    /// carries no checksum, so a drop that splices two frames into
    /// another well-formed frame is not detectable at this layer; what
    /// the harness guarantees is that every frame decoded *before* the
    /// first dropped byte is exactly what was sent.)
    #[test]
    fn dropped_bytes_never_panic_the_reassembler(
        seed in any::<u64>(),
        frames in 1usize..16,
        drop_millis in 1u64..300, // drop rate in thousandths
    ) {
        let (sent, bytes) = handshake_stream(seed, frames);
        let total = bytes.len();
        let plan = FaultPlan::clean(seed ^ 0xD20B).drop_rate(drop_millis as f64 / 1000.0);
        let mut stream = FaultyStream::new(Cursor::new(bytes), plan);
        let (decoded, framing) = reassemble_through_ref(&mut stream);
        // Intact stream (no byte actually dropped): everything decodes.
        if stream.read_delivered() == total as u64 {
            prop_assert!(framing.is_ok());
            prop_assert_eq!(&decoded[..], &sent[..]);
        }
        // Otherwise reaching this line at all is the property: no panic,
        // and `framing` is either Ok or a typed NetError.
    }
}
