//! Property tests of the stream binding: a valid envelope stream decodes
//! to the same frames under *every* chunking of its bytes, and hostile
//! bytes never panic the reassembler.

use ltnc_gf2::{CodeVector, EncodedPacket, Payload};
use ltnc_net::envelope::{self, Envelope, EnvelopeHeader, Message, MessageKind, GENERATION_OBJECT};
use ltnc_net::stream::FrameReassembler;
use ltnc_scheme::SchemeKind;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn header(kind: MessageKind, scheme: SchemeKind, generation: u32) -> EnvelopeHeader {
    EnvelopeHeader { kind, scheme, session: 0xD0_5E55, generation }
}

fn random_trace(rng: &mut SmallRng) -> envelope::TraceContext {
    envelope::TraceContext { origin_micros: rng.gen(), hop: rng.gen::<u32>() as u16 }
}

fn random_packet(rng: &mut SmallRng) -> EncodedPacket {
    let k = rng.gen_range(1..64usize);
    let m = rng.gen_range(1..100usize);
    let mut vector = CodeVector::zero(k);
    for i in 0..k {
        if rng.gen_bool(0.4) {
            vector.set(i);
        }
    }
    if vector.is_zero() {
        vector.set(rng.gen_range(0..k));
    }
    let mut payload = vec![0u8; m];
    rng.fill(&mut payload[..]);
    EncodedPacket::new(vector, Payload::from_vec(payload))
}

/// A random but valid envelope stream exercising every message kind.
fn random_stream(seed: u64, frames: usize) -> (Vec<Envelope>, Vec<u8>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut envelopes = Vec::with_capacity(frames);
    for _ in 0..frames {
        let scheme = SchemeKind::ALL[rng.gen_range(0..3)];
        let generation = rng.gen_range(0..4u32);
        let message = match rng.gen_range(0..8u8) {
            0 => Message::Complete,
            1 => Message::Feedback { transfer: rng.gen(), accept: rng.gen_bool(0.5) },
            2 => Message::Request,
            3 => Message::Reject,
            4 => Message::Manifest {
                object_len: rng.gen_range(0..1_000_000),
                code_length: rng.gen_range(1..512),
                payload_size: rng.gen_range(1..4096),
            },
            5 => {
                let packet = random_packet(&mut rng);
                Message::DataHeader {
                    transfer: rng.gen(),
                    trace: random_trace(&mut rng),
                    payload_size: packet.payload_size(),
                    vector: packet.vector().clone(),
                }
            }
            _ => Message::DataPayload {
                transfer: rng.gen(),
                trace: random_trace(&mut rng),
                packet: random_packet(&mut rng),
            },
        };
        let kind = message.kind();
        let generation = if kind == MessageKind::Request { GENERATION_OBJECT } else { generation };
        envelopes.push(Envelope { header: header(kind, scheme, generation), message });
    }
    let bytes = envelopes.iter().flat_map(envelope::encode_envelope).collect();
    (envelopes, bytes)
}

/// Feeds `stream` chunked at `splits` and returns every decoded frame.
fn decode_chunked(stream: &[u8], chunk_sizes: impl Iterator<Item = usize>) -> Vec<Envelope> {
    let mut reassembler = FrameReassembler::new();
    let mut decoded = Vec::new();
    let mut offset = 0;
    for size in chunk_sizes {
        if offset >= stream.len() {
            break;
        }
        let end = (offset + size.max(1)).min(stream.len());
        reassembler.extend(&stream[offset..end]);
        offset = end;
        while let Some(envelope) = reassembler.next_frame().expect("valid stream") {
            decoded.push(envelope);
        }
    }
    // Whatever the chunking left over, deliver it.
    if offset < stream.len() {
        reassembler.extend(&stream[offset..]);
        while let Some(envelope) = reassembler.next_frame().expect("valid stream") {
            decoded.push(envelope);
        }
    }
    assert_eq!(reassembler.pending_bytes(), 0, "no residue after a whole stream");
    decoded
}

#[test]
fn every_one_byte_chunking_decodes_identically() {
    let (envelopes, stream) = random_stream(7, 24);
    let decoded = decode_chunked(&stream, std::iter::repeat(1));
    assert_eq!(decoded, envelopes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any chunking of a valid stream yields exactly the frames that were
    /// encoded, in order.
    #[test]
    fn random_chunkings_decode_identically(
        seed in any::<u64>(),
        frames in 1usize..20,
        chunks in proptest::collection::vec(1usize..80, 1..200),
    ) {
        let (envelopes, stream) = random_stream(seed, frames);
        let decoded = decode_chunked(&stream, chunks.into_iter());
        prop_assert_eq!(decoded, envelopes);
    }

    /// Hostile bytes never panic: the reassembler either waits for more
    /// input or reports a fatal framing error, whatever garbage arrives
    /// in whatever pieces.
    #[test]
    fn hostile_prefixes_never_panic(
        garbage in proptest::collection::vec(any::<u8>(), 0..400),
        chunk in 1usize..50,
    ) {
        let mut reassembler = FrameReassembler::new();
        let mut dead = false;
        for piece in garbage.chunks(chunk) {
            reassembler.extend(piece);
            loop {
                match reassembler.next_frame() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if dead {
                break;
            }
        }
    }

    /// A valid stream with its tail cut off decodes every whole frame and
    /// then just waits — truncation is indistinguishable from latency.
    #[test]
    fn truncated_streams_wait_instead_of_failing(
        seed in any::<u64>(),
        frames in 1usize..10,
        cut_back in 1usize..40,
    ) {
        let (_, stream) = random_stream(seed, frames);
        let keep = stream.len().saturating_sub(cut_back);
        let mut reassembler = FrameReassembler::new();
        reassembler.extend(&stream[..keep]);
        loop {
            match reassembler.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) => break, // waiting for the missing tail: correct
                Err(e) => panic!("valid prefix errored: {e}"),
            }
        }
    }
}
