//! End-to-end validation of the wire-carried trace context (PR 7): a
//! 4-hop line under 20% per-link loss must (a) expose non-empty
//! `ltnc_*_bucket{le="…"}` latency histograms on a node's live scrape
//! endpoint *mid-run*, and (b) end with per-hop origin→delivery
//! distributions in the shutdown reports whose depths reflect the
//! recode lineage the envelopes carried.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use ltnc_net::faults::DatagramFaultPlan;
use ltnc_net::generation::split_object;
use ltnc_net::{NodeConfig, NodeOptions, NodeRole, PeerNode};
use ltnc_scheme::{SchemeKind, SchemeParams};

fn loopback() -> SocketAddr {
    "127.0.0.1:0".parse().expect("valid addr")
}

/// One blocking HTTP GET against a scrape endpoint, body returned.
fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("scrape endpoint reachable");
    stream.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .expect("request written");
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

#[test]
fn four_hop_line_scrapes_latency_histograms_mid_run() {
    // Line S(0) - 1 - 2 - 3 - 4 with every directed link dropping 20%.
    let params = SchemeParams::new(SchemeKind::Ltnc, 8, 16);
    let object: Vec<u8> = (0..600u32).map(|i| (i * 31 % 256) as u8).collect();
    let manifest = split_object(&object, params).0;
    let session = 0x7_EACE;
    let options = |seed: u64, metrics: bool| NodeOptions {
        tick: Duration::from_millis(1),
        seed,
        metrics_bind: metrics.then(loopback),
        ..NodeOptions::default()
    };

    let mut nodes = Vec::new();
    for i in 0..5usize {
        let role = if i == 0 {
            NodeRole::Source { object: object.clone(), params }
        } else {
            NodeRole::Peer { manifest }
        };
        // Only the far end of the line serves a scrape endpoint: its
        // histograms can only fill through the whole lossy chain.
        let config = NodeConfig::new(session, role, options(0xBEEF + i as u64, i == 4));
        nodes.push(PeerNode::spawn(loopback(), config).expect("spawn"));
    }
    let addrs: Vec<SocketAddr> = nodes.iter().map(PeerNode::local_addr).collect();
    let scrape_addr = nodes[4].metrics_addr().expect("node 4 serves metrics");

    // 20% loss on every directed link of the line, installed before the
    // starting gun (set_peers).
    for (i, node) in nodes.iter().enumerate() {
        for neighbor in [i.wrapping_sub(1), i + 1] {
            if neighbor < 5 && neighbor.abs_diff(i) == 1 {
                let seed = 0xD0_5E ^ ((neighbor as u64) << 8 | i as u64);
                node.set_link_faults(
                    addrs[neighbor],
                    DatagramFaultPlan::clean(seed).drop_rate(0.2),
                );
            }
        }
    }
    let push_targets: [&[usize]; 5] = [&[1], &[2], &[1, 3], &[2, 4], &[3]];
    for (i, node) in nodes.iter().enumerate() {
        node.set_peers(push_targets[i].iter().map(|&j| addrs[j]).collect());
    }

    // Mid-run: poll the far node's live scrape until the latency
    // histogram shows up with cumulative le-buckets — while the
    // dissemination is still in flight or just done, but before any
    // shutdown.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut exposition = String::new();
    while Instant::now() < deadline {
        exposition = http_get(scrape_addr, "/metrics");
        if exposition.contains("ltnc_wire_delivery_latency_us_bucket") {
            break;
        }
        thread::sleep(Duration::from_millis(20));
    }
    assert!(
        exposition.contains("ltnc_wire_delivery_latency_us_bucket"),
        "mid-run scrape never exposed a latency histogram:\n{exposition}"
    );
    assert!(exposition.contains("le=\"+Inf\""), "histogram must end at +Inf");
    assert!(
        exposition.lines().any(|line| {
            line.starts_with("ltnc_wire_delivery_latency_us_bucket")
                && line.contains("le=\"")
                && !line.trim_end().ends_with(" 0")
        }),
        "at least one le-bucket must be non-empty mid-run:\n{exposition}"
    );
    assert!(exposition.contains("ltnc_wire_delivery_latency_us_count"));
    assert!(http_get(scrape_addr, "/healthz").contains("ok"), "/healthz must answer");

    // Let the run converge, then check the report-level view.
    let complete_deadline = Instant::now() + Duration::from_secs(30);
    while nodes[1..].iter().any(|p| !p.is_complete()) && Instant::now() < complete_deadline {
        thread::sleep(Duration::from_millis(5));
    }
    assert!(nodes[1..].iter().all(PeerNode::is_complete), "line did not converge");

    let reports: Vec<_> = nodes.into_iter().map(PeerNode::shutdown).collect();
    assert_eq!(reports[4].object.as_deref(), Some(&object[..]), "bit-exact at 4 hops");
    assert!(reports[0].latency_by_hop.is_empty(), "the source receives no payloads");

    // Every receiving node recorded origin→delivery latency, keyed by
    // the lineage depth the wire carried. The immediate neighbour of the
    // source must have seen depth-1 data; deeper nodes see deeper
    // lineage (relays recode, so exact depths beyond 1 depend on the
    // gossip paths taken — but depth must never be zero).
    for (i, report) in reports.iter().enumerate().skip(1) {
        assert!(!report.latency_by_hop.is_empty(), "node {i} recorded no latency");
        for (depth, snapshot) in &report.latency_by_hop {
            assert!(*depth >= 1, "links crossed is at least one");
            assert!(snapshot.count() > 0);
            assert!(snapshot.p50() <= snapshot.p99(), "quantiles must be ordered");
            assert!(snapshot.p99() <= snapshot.quantile(1.0));
        }
    }
    assert!(
        reports[1].latency_by_hop.iter().any(|&(depth, _)| depth == 1),
        "the source's neighbour must see depth-1 deliveries, got {:?}",
        reports[1].latency_by_hop.iter().map(|&(d, _)| d).collect::<Vec<_>>()
    );
}
