//! UDP dissemination under seeded datagram faults.
//!
//! The stream transports have run through the fault harness since PR 3;
//! these tests close the gap for the UDP path: every node's socket is
//! wrapped in a [`FaultySocket`] dropping, duplicating and reordering
//! whole datagrams, and the swarm still has to converge bit-exactly —
//! the epidemic redundancy plus the loss-adaptive pacing budget are
//! exactly what absorbs the loss.
//!
//! All fault randomness derives from one fixed seed (override with
//! `LTNC_FAULT_SEED`), so a CI failure replays locally with the same
//! drop/duplicate/reorder pattern.

use std::net::UdpSocket;
use std::thread;
use std::time::{Duration, Instant};

use ltnc_net::faults::{DatagramFaultPlan, DatagramFaults, FaultySocket};
use ltnc_net::swarm::{run_localhost_swarm, SwarmConfig, SwarmRuntime};
use ltnc_net::{NodeConfig, NodeOptions, NodeRole};
use ltnc_scheme::{SchemeKind, SchemeParams};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One fixed seed for every fault decision in this file (CI pins it).
fn fault_seed() -> u64 {
    std::env::var("LTNC_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xF00D_u64)
}

fn pseudo_file(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut data = vec![0u8; len];
    rng.fill(&mut data[..]);
    data
}

/// 20% loss with reordering and the odd duplicate — the multihop-lossy
/// channel LT-over-network-coding deployments actually target.
fn lossy_links(seed: u64) -> DatagramFaults {
    DatagramFaults::inbound(
        DatagramFaultPlan::clean(seed).drop_rate(0.20).reorder(0.10, 8).duplicate_rate(0.05),
    )
}

fn lossy_config(scheme: SchemeKind, object_len: usize) -> SwarmConfig {
    SwarmConfig {
        scheme,
        object: pseudo_file(object_len, 0x10AD ^ scheme.wire_id() as u64),
        code_length: 8,
        payload_size: 16,
        peers: 4,
        options: NodeOptions { seed: 0x5EED ^ scheme.wire_id() as u64, ..NodeOptions::default() },
        timeout: Duration::from_secs(60),
        session: 0xFA_0000 + scheme.wire_id() as u64,
        faults: Some(lossy_links(fault_seed())),
        trace_capacity: None,
        runtime: SwarmRuntime::Threaded,
        metrics_bind: None,
        flight_recorder: None,
    }
}

#[test]
fn swarm_converges_bit_exactly_under_seeded_loss_and_reordering() {
    for scheme in SchemeKind::ALL {
        let config = lossy_config(scheme, 600);
        let report = run_localhost_swarm(&config).expect("swarm should start");
        assert!(
            report.converged,
            "{scheme:?}: only {}/{} peers completed in {:?} under loss",
            report.peers_complete, config.peers, report.elapsed
        );
        assert!(report.bit_exact, "{scheme:?}: reconstruction mismatch under loss");
        // The harness must actually have injected faults, and the pacing
        // must have seen them: offers died at their TTL and live-peer
        // budgets grew to compensate.
        assert!(report.total_faults.dropped_in > 0, "{scheme:?}: no drops injected");
        assert!(report.total_faults.reordered_in > 0, "{scheme:?}: no reordering injected");
        assert!(report.total_wire.offer_timeouts > 0, "{scheme:?}: loss produced no timeouts");
        assert!(
            report.total_wire.budget_raises > 0,
            "{scheme:?}: adaptive pacing never reacted to loss"
        );
        // Loss estimates surfaced for at least the source's peers.
        assert!(report
            .peer_reports
            .iter()
            .any(|peer| peer.loss_estimates.iter().any(|&(_, loss)| loss > 0.0)));
    }
}

#[test]
fn fault_pattern_is_stable_for_a_fixed_seed() {
    // Same seed, same template: the per-node plans must come out
    // identical (this is what makes a CI stress failure replayable).
    let a = lossy_links(1234).for_node(3);
    let b = lossy_links(1234).for_node(3);
    let c = lossy_links(1234).for_node(4);
    assert_eq!(a.inbound.seed, b.inbound.seed);
    assert_eq!(a.outbound.seed, b.outbound.seed);
    assert_ne!(a.inbound.seed, c.inbound.seed, "nodes must fail independently");
    assert_eq!(a.inbound.drop_rate, 0.20);
    assert_eq!(c.inbound.reorder_window, 8);
}

#[test]
fn offers_to_a_dead_peer_cut_its_budget_to_the_floor() {
    // A source pushing at a bound-but-silent socket: every offer times
    // out with no feedback ever, so the adaptive budget must fall
    // (multiplicative decrease), not grow.
    let params = SchemeParams::new(SchemeKind::Rlnc, 4, 2);
    let options = NodeOptions {
        tick: Duration::from_millis(1),
        pending_ttl: Duration::from_millis(30),
        seed: 11,
        ..NodeOptions::default()
    };
    let source = ltnc_net::PeerNode::spawn(
        "127.0.0.1:0".parse().expect("addr"),
        NodeConfig::new(21, NodeRole::Source { object: vec![3u8; 16], params }, options),
    )
    .expect("spawn source");
    let dead = UdpSocket::bind("127.0.0.1:0").expect("bind dead peer");
    source.set_peers(vec![dead.local_addr().expect("addr")]);
    thread::sleep(Duration::from_millis(400));
    let report = source.shutdown();
    assert!(report.wire.offer_timeouts > 0, "offers must have timed out");
    assert!(report.wire.budget_cuts > 0, "a silent peer must cut the budget");
    assert_eq!(report.wire.budget_raises, 0, "nothing may raise a dead peer's budget");
    let (_, loss) = report.loss_estimates.first().expect("dead peer tracked");
    assert!(*loss > 0.5, "loss estimate should approach 1, got {loss}");
}

#[test]
fn faulty_socket_delivery_is_deterministic_for_one_sender() {
    // End-to-end determinism of the datagram harness itself: one ordered
    // sender, drop + duplicate faults, two runs with the same seed must
    // deliver the same sequence.
    let run = |seed: u64| {
        let plan = DatagramFaultPlan::clean(seed).drop_rate(0.3).duplicate_rate(0.15);
        let socket = FaultySocket::new(
            UdpSocket::bind("127.0.0.1:0").expect("bind"),
            DatagramFaults::inbound(plan),
        )
        .expect("wrap");
        socket.set_read_timeout(Some(Duration::from_millis(40))).expect("timeout");
        let sender = UdpSocket::bind("127.0.0.1:0").expect("bind sender");
        let to = socket.local_addr().expect("addr");
        for i in 0..60u8 {
            sender.send_to(&[i], to).expect("send");
            thread::sleep(Duration::from_micros(200));
        }
        let mut seen = Vec::new();
        let mut buf = [0u8; 8];
        let mut quiet = 0;
        while quiet < 3 {
            let before = Instant::now();
            match socket.recv_from(&mut buf) {
                Ok((_, _)) => seen.push(buf[0]),
                Err(_) if before.elapsed() >= Duration::from_millis(30) => quiet += 1,
                Err(_) => {}
            }
        }
        seen
    };
    let seed = fault_seed();
    assert_eq!(run(seed), run(seed), "same seed must replay the same deliveries");
}

/// Heavier stress variant for the CI `--include-ignored` step: more
/// peers, 30% loss, delays on top, every scheme, a multi-generation
/// object.
#[test]
#[ignore = "stress: run via cargo test -- --include-ignored (CI fault step)"]
fn stress_swarm_survives_heavy_loss_reordering_and_delay() {
    for scheme in SchemeKind::ALL {
        let faults = DatagramFaults::inbound(
            DatagramFaultPlan::clean(fault_seed() ^ 0x57E5)
                .drop_rate(0.30)
                .reorder(0.15, 16)
                .duplicate_rate(0.10)
                .delay(0.05, Duration::from_millis(2)),
        );
        let config = SwarmConfig {
            scheme,
            object: pseudo_file(4096, 0xBEEF ^ scheme.wire_id() as u64),
            code_length: 16,
            payload_size: 32,
            peers: 8,
            options: NodeOptions {
                seed: 0xACE ^ scheme.wire_id() as u64,
                ..NodeOptions::default()
            },
            timeout: Duration::from_secs(120),
            session: 0xFB_0000 + scheme.wire_id() as u64,
            faults: Some(faults),
            trace_capacity: None,
            runtime: SwarmRuntime::Threaded,
            metrics_bind: None,
            flight_recorder: None,
        };
        let report = run_localhost_swarm(&config).expect("swarm should start");
        assert!(
            report.converged && report.bit_exact,
            "{scheme:?} under heavy faults: {}/{} complete, bit_exact={} in {:?}",
            report.peers_complete,
            config.peers,
            report.bit_exact,
            report.elapsed
        );
        assert!(report.total_faults.delayed_in > 0, "{scheme:?}: no delays injected");
    }
}
