//! Keeps `docs/PROTOCOL.md` honest: the byte-layout tables in the spec
//! are parsed out of the markdown and compared against what
//! `ltnc_net::envelope` actually encodes. If either side changes without
//! the other, this test fails — the spec cannot silently drift from the
//! wire format.

use ltnc_gf2::{CodeVector, EncodedPacket, Payload};
use ltnc_net::envelope::{
    self, EnvelopeHeader, Message, MessageKind, TraceContext, ENVELOPE_HEADER_BYTES, MAGIC,
    PROTOCOL_VERSION,
};
use ltnc_scheme::SchemeKind;

fn spec() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/PROTOCOL.md");
    std::fs::read_to_string(path).expect("docs/PROTOCOL.md must exist (see repo docs/)")
}

/// Splits a markdown table row into trimmed cells, stripping backticks.
fn cells(line: &str) -> Vec<String> {
    line.trim()
        .trim_start_matches('|')
        .trim_end_matches('|')
        .split('|')
        .map(|cell| cell.trim().replace('`', ""))
        .collect()
}

/// Data rows of any markdown table whose first cell is in `names` (a
/// numeric second cell separates data rows from table-header rows like
/// `| kind | id | …`).
fn table_rows(spec: &str, names: &[&str]) -> Vec<Vec<String>> {
    spec.lines()
        .filter(|line| line.trim_start().starts_with('|'))
        .map(cells)
        .filter(|row| row.first().is_some_and(|name| names.contains(&name.as_str())))
        .filter(|row| row.get(1).is_some_and(|id| id.parse::<u64>().is_ok()))
        .collect()
}

/// The reference test vectors the spec's size column documents:
/// `k = 21`, `m = 9`.
fn sample_packet() -> EncodedPacket {
    EncodedPacket::new(CodeVector::from_indices(21, &[0, 5, 20]), Payload::from_vec(vec![7; 9]))
}

fn header(kind: MessageKind) -> EnvelopeHeader {
    EnvelopeHeader { kind, scheme: SchemeKind::Ltnc, session: 0x0B0E, generation: 2 }
}

/// Encodes the reference frame for one documented kind.
fn reference_frame(kind_name: &str) -> (MessageKind, Vec<u8>) {
    let packet = sample_packet();
    match kind_name {
        "DATA-HEADER" => (
            MessageKind::DataHeader,
            envelope::encode(
                &header(MessageKind::DataHeader),
                &Message::DataHeader {
                    transfer: 1,
                    trace: TraceContext { origin_micros: 1_000_000, hop: 1 },
                    payload_size: packet.payload_size(),
                    vector: packet.vector().clone(),
                },
            ),
        ),
        "DATA-PAYLOAD" => (
            MessageKind::DataPayload,
            envelope::encode(
                &header(MessageKind::DataPayload),
                &Message::DataPayload {
                    transfer: 2,
                    trace: TraceContext { origin_micros: 1_000_000, hop: 1 },
                    packet,
                },
            ),
        ),
        "FEEDBACK-ABORT" => (
            MessageKind::FeedbackAbort,
            envelope::encode(
                &header(MessageKind::FeedbackAbort),
                &Message::Feedback { transfer: 3, accept: false },
            ),
        ),
        "FEEDBACK-ACCEPT" => (
            MessageKind::FeedbackAccept,
            envelope::encode(
                &header(MessageKind::FeedbackAccept),
                &Message::Feedback { transfer: 4, accept: true },
            ),
        ),
        "COMPLETE" => (
            MessageKind::Complete,
            envelope::encode(&header(MessageKind::Complete), &Message::Complete),
        ),
        "REQUEST" => (
            MessageKind::Request,
            envelope::encode(&header(MessageKind::Request), &Message::Request),
        ),
        "MANIFEST" => (
            MessageKind::Manifest,
            envelope::encode(
                &header(MessageKind::Manifest),
                &Message::Manifest { object_len: 4096, code_length: 21, payload_size: 9 },
            ),
        ),
        "REJECT" => {
            (MessageKind::Reject, envelope::encode(&header(MessageKind::Reject), &Message::Reject))
        }
        other => panic!("spec documents unknown kind {other:?}"),
    }
}

#[test]
fn header_offset_table_matches_the_encoder() {
    let spec = spec();
    let rows = table_rows(&spec, &["magic", "version", "kind", "scheme", "session", "generation"]);
    assert_eq!(rows.len(), 6, "the header table must document all six fields");

    // What the encoder actually lays down for a known envelope.
    let env_header = EnvelopeHeader {
        kind: MessageKind::Complete,
        scheme: SchemeKind::Rlnc,
        session: 0x1122_3344_5566_7788,
        generation: 0xAABB_CCDD,
    };
    let bytes = envelope::encode(&env_header, &Message::Complete);

    let mut covered = 0usize;
    for row in rows {
        let name = row[0].as_str();
        let offset: usize = row[1].parse().unwrap_or_else(|_| panic!("{name}: bad offset"));
        let size: usize = row[2].parse().unwrap_or_else(|_| panic!("{name}: bad size"));
        covered += size;
        match name {
            "magic" => {
                assert_eq!((offset, size), (0, 4));
                assert_eq!(&bytes[offset..offset + size], &MAGIC);
            }
            "version" => {
                assert_eq!((offset, size), (4, 1));
                assert_eq!(bytes[offset], PROTOCOL_VERSION);
                assert!(row[3].contains('2'), "documented version must be 2");
            }
            "kind" => {
                assert_eq!((offset, size), (5, 1));
                assert_eq!(bytes[offset], MessageKind::Complete as u8);
            }
            "scheme" => {
                assert_eq!((offset, size), (6, 1));
                assert_eq!(bytes[offset], SchemeKind::Rlnc.wire_id());
                // The documented scheme ids must match wire_id().
                for kind in SchemeKind::ALL {
                    let label = format!("{} = {}", kind.wire_id(), kind.label().to_uppercase());
                    assert!(
                        row[3].to_uppercase().contains(&label),
                        "scheme row must document {label:?}, got {:?}",
                        row[3]
                    );
                }
            }
            "session" => {
                assert_eq!((offset, size), (7, 8));
                assert_eq!(
                    u64::from_le_bytes(bytes[offset..offset + size].try_into().unwrap()),
                    env_header.session
                );
            }
            "generation" => {
                assert_eq!((offset, size), (15, 4));
                assert_eq!(
                    u32::from_le_bytes(bytes[offset..offset + size].try_into().unwrap()),
                    env_header.generation
                );
            }
            other => panic!("unexpected field {other}"),
        }
    }
    assert_eq!(covered, ENVELOPE_HEADER_BYTES, "fields must tile the whole header");
}

#[test]
fn kind_table_ids_and_frame_sizes_match_the_encoder() {
    let spec = spec();
    let names = [
        "DATA-HEADER",
        "DATA-PAYLOAD",
        "FEEDBACK-ABORT",
        "FEEDBACK-ACCEPT",
        "COMPLETE",
        "REQUEST",
        "MANIFEST",
        "REJECT",
    ];
    let rows = table_rows(&spec, &names);
    assert_eq!(rows.len(), names.len(), "the kind table must document all eight kinds");

    for row in rows {
        let name = row[0].as_str();
        let documented_id: u8 = row[1].parse().unwrap_or_else(|_| panic!("{name}: bad id"));
        let documented_len: usize =
            row[3].parse().unwrap_or_else(|_| panic!("{name}: bad frame size {:?}", row[3]));
        let (kind, frame) = reference_frame(name);
        assert_eq!(documented_id, kind as u8, "{name}: wire id drifted");
        assert_eq!(
            documented_len,
            frame.len(),
            "{name}: documented reference frame size drifted from encode output"
        );
        // The id column must also round-trip through the decoder.
        assert_eq!(envelope::decode(&frame).expect("reference frame decodes").header.kind, kind);
    }
}

#[test]
fn documented_safety_caps_match_the_code() {
    let spec = spec();
    assert!(
        spec.contains("2^20") && spec.contains("2^24"),
        "spec must document the dimension caps"
    );
    assert_eq!(envelope::MAX_CODE_LENGTH, 1 << 20);
    assert_eq!(envelope::MAX_PAYLOAD_SIZE, 1 << 24);
}
