//! The swarm observability plane, end to end: a sharded lossy swarm
//! serving one aggregated scrape endpoint verified *mid-run*, and the
//! stall watchdog cutting a flight-recorder post-mortem when a wedged
//! node stops all progress.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

use ltnc_net::faults::{DatagramFaultPlan, DatagramFaults};
use ltnc_net::swarm::{
    run_wired_swarm, FlightRecorder, SwarmConfig, SwarmReport, SwarmRuntime, SwarmWiring,
};
use ltnc_scheme::SchemeKind;
use ltnc_telemetry::json::JsonValue;

fn pseudo_file(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

/// Reserves an ephemeral localhost port: bind, note, release. The tiny
/// reuse race is acceptable in a test.
fn reserve_port() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    listener.local_addr().expect("local addr")
}

/// Minimal HTTP/1.0 GET against the scrape endpoint; `None` when the
/// endpoint is no longer accepting (the run is over).
fn http_get(addr: SocketAddr, path: &str) -> Option<String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_millis(500)).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let body = response.split_once("\r\n\r\n")?.1;
    Some(body.to_string())
}

/// Sum of one metric over every label combination in a Prometheus page.
fn metric_sum(page: &str, name: &str) -> u64 {
    page.lines()
        .filter(|line| {
            line.starts_with(name)
                && matches!(line.as_bytes().get(name.len()), Some(b' ') | Some(b'{'))
        })
        .filter_map(|line| line.rsplit(' ').next())
        .filter_map(|value| value.parse::<u64>().ok())
        .sum()
}

#[test]
fn sharded_swarm_serves_one_aggregated_endpoint_mid_run() {
    let addr = reserve_port();
    let mut config = SwarmConfig::quick(SchemeKind::Ltnc, pseudo_file(16 * 1024, 0x0B5E_0EE5));
    config.peers = 6;
    config.code_length = 16;
    config.payload_size = 32;
    config.timeout = Duration::from_secs(60);
    config.runtime = SwarmRuntime::Sharded { workers: 3 };
    config.metrics_bind = Some(addr);
    config.faults = Some(DatagramFaults::inbound(DatagramFaultPlan::clean(0x10af).drop_rate(0.15)));

    let swarm = thread::spawn(move || run_wired_swarm(&config, &SwarmWiring::full_mesh(6)));

    // Scrape until the endpoint goes down with the run; every page must
    // carry reactor samples, and the scheduler counters must be
    // monotone scrape over scrape.
    let mut turns_seen: Vec<u64> = Vec::new();
    let mut saw_decoder = false;
    let mut saw_wire = false;
    for _ in 0..600 {
        let Some(page) = http_get(addr, "/metrics") else {
            if swarm.is_finished() {
                break;
            }
            thread::sleep(Duration::from_millis(25));
            continue;
        };
        assert!(
            page.contains("ltnc_reactor_turns"),
            "mid-run page must carry reactor samples:\n{page}"
        );
        turns_seen.push(metric_sum(&page, "ltnc_reactor_turns"));
        saw_decoder |= page.contains("ltnc_decoder_nodes");
        saw_wire |= page.contains("ltnc_wire_datagrams_sent");
        thread::sleep(Duration::from_millis(25));
    }

    let report = swarm.join().expect("swarm thread").expect("swarm runs");
    assert!(report.converged && report.bit_exact, "lossy sharded swarm converged: {report:?}");
    assert!(turns_seen.len() >= 2, "needed at least two mid-run scrapes, got {turns_seen:?}");
    assert!(turns_seen.windows(2).all(|w| w[0] <= w[1]), "non-monotone turns: {turns_seen:?}");
    assert!(*turns_seen.last().unwrap() > 0, "shards never turned: {turns_seen:?}");
    assert!(saw_decoder, "decoder progress family missing from every scrape");
    assert!(saw_wire, "rolled-up wire family missing from every scrape");

    // The run's final reactor rollup mirrors what the endpoint served.
    assert_eq!(report.reactor.len(), 3, "one snapshot per shard");
    let total_turns: u64 = report.reactor.iter().map(|s| s.turns).sum();
    assert!(total_turns >= *turns_seen.last().unwrap(), "report rollup behind last scrape");
    assert_eq!(report.reactor.iter().map(|s| s.nodes).sum::<u64>(), 7, "all nodes partitioned");
}

/// Wedges one peer (every inbound link drops 100%) so swarm-wide
/// decoding progress flatlines once the healthy peers finish, and
/// asserts the watchdog cuts a parseable post-mortem that carries the
/// `stall_detected` mark.
#[test]
fn watchdog_dumps_a_flight_recording_when_a_node_stalls() {
    let peers = 3;
    let victim = peers; // highest-indexed peer
    let mut config = SwarmConfig::quick(SchemeKind::Rlnc, pseudo_file(900, 0xDEAD));
    config.peers = peers;
    config.code_length = 8;
    config.payload_size = 16;
    config.timeout = Duration::from_secs(4);
    config.runtime = SwarmRuntime::Sharded { workers: 2 };
    config.flight_recorder = Some(FlightRecorder {
        capacity: 64,
        stall_window: Duration::from_millis(400),
        dump_path: None,
    });

    let mut wiring = SwarmWiring::full_mesh(peers);
    for from in 0..=peers {
        if from != victim {
            wiring.link_faults.push((from, victim, DatagramFaultPlan::clean(9).drop_rate(1.0)));
        }
    }

    let report: SwarmReport = run_wired_swarm(&config, &wiring).expect("swarm runs");
    assert!(!report.converged, "the wedged peer must not converge");
    assert_eq!(report.peers_complete, peers - 1, "healthy peers finish");

    let dump = report.flight_dump.as_deref().expect("watchdog cut a dump");
    assert!(dump.contains("stall_detected"), "stall mark missing:\n{dump}");
    let doc = JsonValue::parse(dump).expect("dump is valid JSON");
    assert_eq!(doc.get("kind").and_then(JsonValue::as_str), Some("flight_recorder"));
    let reason = doc.get("reason").and_then(JsonValue::as_str).expect("reason");
    assert!(reason == "stall" || reason == "shutdown_timeout", "unexpected reason {reason:?}");
    let shards = doc.get("shards").and_then(JsonValue::as_array).expect("shards");
    assert_eq!(shards.len(), 2);
    assert!(
        shards.iter().all(|s| s.get("turns").and_then(JsonValue::as_i64).unwrap_or(0) > 0),
        "every shard kept turning:\n{dump}"
    );
    let stuck = doc.get("stalled_nodes").and_then(JsonValue::as_array).expect("stalled nodes");
    assert_eq!(stuck.len(), 1, "exactly the wedged peer is stuck:\n{dump}");
    assert_eq!(stuck[0].get("node").and_then(JsonValue::as_i64), Some(victim as i64));
    assert_eq!(stuck[0].get("decoded_rank").and_then(JsonValue::as_i64), Some(0));
}
