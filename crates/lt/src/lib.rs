//! LT (Luby Transform) erasure codes.
//!
//! This crate is the erasure-coding substrate of the LTNC reproduction. It
//! provides the three ingredients of Luby's FOCS 2002 construction that the
//! paper builds upon:
//!
//! * the [`IdealSoliton`] and [`RobustSoliton`] degree distributions
//!   (Figure 2 of the paper is the Robust Soliton pmf);
//! * the [`LtEncoder`], the *source-side* encoder that combines `d` native
//!   packets chosen uniformly at random, with `d` drawn from the Robust
//!   Soliton distribution;
//! * the [`BpDecoder`], the belief-propagation (peeling) decoder operating on
//!   a Tanner graph, recovering the `k` native packets in `O(m·k·log k)`
//!   payload work when the degree properties hold.
//!
//! The decoder reports fine-grained [`DecodeEvent`]s so that the `ltnc-core`
//! crate can maintain the auxiliary structures LTNC needs for recoding
//! (degree index, connected components of degree-2 packets, …) without
//! duplicating the peeling logic.
//!
//! # Example: source encoding and decoding
//!
//! ```
//! use ltnc_lt::{LtEncoder, BpDecoder, RobustSoliton};
//! use ltnc_gf2::Payload;
//! use rand::SeedableRng;
//! use rand::rngs::SmallRng;
//!
//! let k = 32;
//! let natives: Vec<Payload> = (0..k)
//!     .map(|i| Payload::from_vec(vec![i as u8; 16]))
//!     .collect();
//! let dist = RobustSoliton::new(k, 0.1, 0.5).unwrap();
//! let mut encoder = LtEncoder::new(natives.clone(), dist).unwrap();
//! let mut rng = SmallRng::seed_from_u64(7);
//!
//! let mut decoder = BpDecoder::new(k, 16);
//! while !decoder.is_complete() {
//!     let packet = encoder.encode(&mut rng);
//!     decoder.insert(packet);
//! }
//! for i in 0..k {
//!     assert_eq!(decoder.native(i).unwrap(), &natives[i]);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decoder;
mod encoder;
mod error;
mod soliton;
mod tanner;

pub use decoder::{BpDecoder, DecodeEvent, InsertOutcome, InsertReport};
pub use encoder::LtEncoder;
pub use error::LtError;
pub use soliton::{DegreeDistribution, IdealSoliton, RobustSoliton};
pub use tanner::{PacketId, TannerGraph};
