use rand::seq::index::sample as sample_indices;
use rand::Rng;

use ltnc_gf2::{CodeVector, EncodedPacket, Payload};

use crate::{DegreeDistribution, LtError, RobustSoliton};

/// The source-side LT encoder.
///
/// The encoder owns the `k` native payloads and produces a stream of encoded
/// packets: each packet combines `d` native packets chosen uniformly at
/// random, with `d` drawn from the configured degree distribution (Robust
/// Soliton in the paper). LT codes are rateless: the encoder can produce an
/// unbounded number of distinct packets.
///
/// In the dissemination application only the *source* runs this encoder;
/// intermediary nodes recode with `ltnc-core` instead.
#[derive(Debug, Clone)]
pub struct LtEncoder<D = RobustSoliton> {
    natives: Vec<Payload>,
    payload_size: usize,
    distribution: D,
    packets_emitted: u64,
}

impl<D: DegreeDistribution> LtEncoder<D> {
    /// Creates an encoder over the given native payloads.
    ///
    /// # Errors
    ///
    /// Returns [`LtError::EmptyCode`] when `natives` is empty,
    /// [`LtError::InconsistentPayloadSizes`] when payload sizes differ, and
    /// [`LtError::PacketMismatch`] when the distribution's code length does
    /// not match the number of native packets.
    pub fn new(natives: Vec<Payload>, distribution: D) -> Result<Self, LtError> {
        if natives.is_empty() {
            return Err(LtError::EmptyCode);
        }
        let payload_size = natives[0].len();
        for (i, p) in natives.iter().enumerate() {
            if p.len() != payload_size {
                return Err(LtError::InconsistentPayloadSizes {
                    expected: payload_size,
                    index: i,
                    found: p.len(),
                });
            }
        }
        if distribution.code_length() != natives.len() {
            return Err(LtError::PacketMismatch {
                expected: natives.len(),
                found: distribution.code_length(),
            });
        }
        Ok(LtEncoder { natives, payload_size, distribution, packets_emitted: 0 })
    }

    /// Number of native packets `k`.
    #[must_use]
    pub fn code_length(&self) -> usize {
        self.natives.len()
    }

    /// Payload size `m` in bytes.
    #[must_use]
    pub fn payload_size(&self) -> usize {
        self.payload_size
    }

    /// The degree distribution in use.
    #[must_use]
    pub fn distribution(&self) -> &D {
        &self.distribution
    }

    /// Number of packets emitted so far.
    #[must_use]
    pub fn packets_emitted(&self) -> u64 {
        self.packets_emitted
    }

    /// Read-only access to a native payload.
    ///
    /// # Panics
    ///
    /// Panics if `index >= k`.
    #[must_use]
    pub fn native(&self, index: usize) -> &Payload {
        &self.natives[index]
    }

    /// Generates one encoded packet: draws a degree from the distribution and
    /// XORs that many native packets chosen uniformly at random without
    /// replacement.
    pub fn encode<R: Rng + ?Sized>(&mut self, rng: &mut R) -> EncodedPacket {
        let degree = self.distribution.sample(rng);
        self.encode_with_degree(rng, degree)
    }

    /// Generates one encoded packet of exactly the given degree (clamped to
    /// `1..=k`), choosing the natives uniformly at random.
    pub fn encode_with_degree<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        degree: usize,
    ) -> EncodedPacket {
        let k = self.natives.len();
        let degree = degree.clamp(1, k);
        let chosen = sample_indices(rng, k, degree);
        let mut vector = CodeVector::zero(k);
        let mut sources = Vec::with_capacity(degree);
        for i in chosen.iter() {
            vector.set(i);
            sources.push(&self.natives[i]);
        }
        // Fold all chosen natives in one batched pass over the payload.
        let (&first, rest) = sources.split_first().expect("degree >= 1");
        let mut payload = first.clone();
        payload.xor_assign_many(rest);
        self.packets_emitted += 1;
        EncodedPacket::new(vector, payload)
    }

    /// Emits the degree-1 packet for a specific native index (used by the
    /// dissemination source to seed the network and by tests).
    ///
    /// # Panics
    ///
    /// Panics if `index >= k`.
    pub fn encode_native(&mut self, index: usize) -> EncodedPacket {
        self.packets_emitted += 1;
        EncodedPacket::native(self.natives.len(), index, self.natives[index].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IdealSoliton;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn natives(k: usize, m: usize) -> Vec<Payload> {
        (0..k).map(|i| Payload::from_vec((0..m).map(|j| (i * 31 + j) as u8).collect())).collect()
    }

    #[test]
    fn rejects_empty_natives() {
        let dist = RobustSoliton::for_code_length(1).unwrap();
        assert_eq!(LtEncoder::new(vec![], dist).unwrap_err(), LtError::EmptyCode);
    }

    #[test]
    fn rejects_inconsistent_sizes() {
        let dist = RobustSoliton::for_code_length(2).unwrap();
        let err = LtEncoder::new(vec![Payload::zero(4), Payload::zero(5)], dist).unwrap_err();
        assert_eq!(err, LtError::InconsistentPayloadSizes { expected: 4, index: 1, found: 5 });
    }

    #[test]
    fn rejects_mismatched_distribution() {
        let dist = RobustSoliton::for_code_length(3).unwrap();
        let err = LtEncoder::new(natives(4, 8), dist).unwrap_err();
        assert_eq!(err, LtError::PacketMismatch { expected: 4, found: 3 });
    }

    #[test]
    fn encoded_packet_payload_is_xor_of_selected_natives() {
        let k = 16;
        let m = 8;
        let nat = natives(k, m);
        let dist = RobustSoliton::for_code_length(k).unwrap();
        let mut enc = LtEncoder::new(nat.clone(), dist).unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..100 {
            let p = enc.encode(&mut rng);
            assert_eq!(p.code_length(), k);
            assert_eq!(p.payload_size(), m);
            assert!(p.degree() >= 1);
            let mut expected = Payload::zero(m);
            for i in p.vector().iter_ones() {
                expected.xor_assign(&nat[i]);
            }
            assert_eq!(p.payload(), &expected);
        }
        assert_eq!(enc.packets_emitted(), 100);
    }

    #[test]
    fn encode_with_degree_honours_degree() {
        let k = 32;
        let nat = natives(k, 4);
        let dist = IdealSoliton::new(k).unwrap();
        let mut enc = LtEncoder::new(nat, dist).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        for d in 1..=k {
            let p = enc.encode_with_degree(&mut rng, d);
            assert_eq!(p.degree(), d);
        }
    }

    #[test]
    fn encode_with_degree_clamps_out_of_range() {
        let k = 8;
        let nat = natives(k, 4);
        let dist = IdealSoliton::new(k).unwrap();
        let mut enc = LtEncoder::new(nat, dist).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(enc.encode_with_degree(&mut rng, 0).degree(), 1);
        assert_eq!(enc.encode_with_degree(&mut rng, 100).degree(), k);
    }

    #[test]
    fn encode_native_is_degree_one_with_original_payload() {
        let k = 8;
        let nat = natives(k, 4);
        let dist = RobustSoliton::for_code_length(k).unwrap();
        let mut enc = LtEncoder::new(nat.clone(), dist).unwrap();
        let p = enc.encode_native(3);
        assert_eq!(p.degree(), 1);
        assert!(p.vector().contains(3));
        assert_eq!(p.payload(), &nat[3]);
        assert_eq!(enc.native(3), &nat[3]);
    }

    #[test]
    fn degrees_follow_the_distribution_on_average() {
        let k = 256;
        let nat = natives(k, 1);
        let dist = RobustSoliton::for_code_length(k).unwrap();
        let expected_mean = dist.mean_degree();
        let mut enc = LtEncoder::new(nat, dist).unwrap();
        let mut rng = SmallRng::seed_from_u64(77);
        let n = 20_000;
        let mut sum = 0usize;
        for _ in 0..n {
            sum += enc.encode(&mut rng).degree();
        }
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - expected_mean).abs() < 0.3,
            "empirical mean {mean}, expected {expected_mean}"
        );
    }
}
