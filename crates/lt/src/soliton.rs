use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::LtError;

/// A probability distribution over packet degrees `1..=k`.
///
/// Both the source encoder and the LTNC recoder draw target degrees from such
/// a distribution. The trait exposes the pmf (for Figure 2 and for tests) and
/// inverse-CDF sampling.
pub trait DegreeDistribution {
    /// Code length `k`: degrees range over `1..=k`.
    fn code_length(&self) -> usize;

    /// Probability of degree `d` (0 outside `1..=k`).
    fn pmf(&self, d: usize) -> f64;

    /// Draws a degree in `1..=k`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize;

    /// Expected degree under this distribution.
    fn mean_degree(&self) -> f64 {
        (1..=self.code_length()).map(|d| d as f64 * self.pmf(d)).sum()
    }
}

/// The Ideal Soliton distribution: `ρ(1) = 1/k`, `ρ(d) = 1/(d(d−1))` for `d ≥ 2`.
///
/// Optimal in expectation but fragile in practice (the expected ripple size is
/// exactly one); provided as a baseline and as the building block of the
/// Robust Soliton.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IdealSoliton {
    k: usize,
    cdf: Vec<f64>,
}

impl IdealSoliton {
    /// Creates the Ideal Soliton distribution over degrees `1..=k`.
    ///
    /// # Errors
    ///
    /// Returns [`LtError::EmptyCode`] when `k == 0`.
    pub fn new(k: usize) -> Result<Self, LtError> {
        if k == 0 {
            return Err(LtError::EmptyCode);
        }
        let pmf: Vec<f64> = (1..=k).map(|d| Self::raw_pmf(k, d)).collect();
        Ok(IdealSoliton { k, cdf: cumulative(&pmf) })
    }

    fn raw_pmf(k: usize, d: usize) -> f64 {
        if d == 1 {
            1.0 / k as f64
        } else if d >= 2 && d <= k {
            1.0 / (d as f64 * (d as f64 - 1.0))
        } else {
            0.0
        }
    }
}

impl DegreeDistribution for IdealSoliton {
    fn code_length(&self) -> usize {
        self.k
    }

    fn pmf(&self, d: usize) -> f64 {
        if d == 0 || d > self.k {
            0.0
        } else {
            Self::raw_pmf(self.k, d)
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        sample_from_cdf(&self.cdf, rng)
    }
}

/// The Robust Soliton distribution of Luby's LT codes (Figure 2 of the paper).
///
/// Parameterised by `c > 0` and `δ ∈ (0, 1)`. With `R = c·ln(k/δ)·√k`, the
/// distribution adds to the Ideal Soliton a spike at `d = k/R` and extra mass
/// on low degrees, then normalises. More than half of the resulting mass sits
/// on degrees 1 and 2 — the property LTNC's refinement step exploits — and the
/// mean degree is `O(log k)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustSoliton {
    k: usize,
    c: f64,
    delta: f64,
    spike: usize,
    beta: f64,
    pmf: Vec<f64>,
    cdf: Vec<f64>,
}

impl RobustSoliton {
    /// Creates the Robust Soliton distribution over degrees `1..=k`.
    ///
    /// Typical parameters (and the defaults used throughout this workspace via
    /// [`RobustSoliton::for_code_length`]) are `c = 0.1` and `δ = 0.5`.
    ///
    /// # Errors
    ///
    /// Returns [`LtError::EmptyCode`] when `k == 0`, and
    /// [`LtError::InvalidDistributionParameter`] when `c ≤ 0` or `δ ∉ (0, 1)`.
    pub fn new(k: usize, c: f64, delta: f64) -> Result<Self, LtError> {
        if k == 0 {
            return Err(LtError::EmptyCode);
        }
        if c <= 0.0 || !c.is_finite() {
            return Err(LtError::InvalidDistributionParameter { parameter: "c", value: c });
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(LtError::InvalidDistributionParameter { parameter: "delta", value: delta });
        }

        let kf = k as f64;
        let r = (c * (kf / delta).ln() * kf.sqrt()).max(1.0);
        // Spike position k/R, clamped into [1, k].
        let spike = ((kf / r).round() as usize).clamp(1, k);

        let mut raw = vec![0.0; k + 1];
        for (d, slot) in raw.iter_mut().enumerate().skip(1) {
            let rho = IdealSoliton::raw_pmf(k, d);
            let tau = if d < spike {
                r / (d as f64 * kf)
            } else if d == spike {
                r * (r / delta).ln() / kf
            } else {
                0.0
            };
            *slot = rho + tau;
        }
        let beta: f64 = raw.iter().sum();
        let pmf: Vec<f64> = raw.iter().skip(1).map(|p| p / beta).collect();
        let cdf = cumulative(&pmf);
        Ok(RobustSoliton { k, c, delta, spike, beta, pmf, cdf })
    }

    /// The Robust Soliton with the standard parameters `c = 0.1`, `δ = 0.5`.
    ///
    /// # Errors
    ///
    /// Returns [`LtError::EmptyCode`] when `k == 0`.
    pub fn for_code_length(k: usize) -> Result<Self, LtError> {
        RobustSoliton::new(k, 0.1, 0.5)
    }

    /// The `c` parameter.
    #[must_use]
    pub fn c(&self) -> f64 {
        self.c
    }

    /// The `δ` parameter.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Position `k/R` of the spike added on top of the Ideal Soliton.
    #[must_use]
    pub fn spike_degree(&self) -> usize {
        self.spike
    }

    /// The normalisation constant `β` (expected overhead factor of LT codes:
    /// `k·β` encoded packets suffice to decode with probability `1 − δ`).
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Probability that a drawn degree is 1 or 2. The paper relies on this
    /// being above one half ("more than 50% of encoded packets of degree 1 or
    /// 2 allowing to bootstrap belief propagation").
    #[must_use]
    pub fn low_degree_mass(&self) -> f64 {
        self.pmf(1) + self.pmf(2)
    }
}

impl DegreeDistribution for RobustSoliton {
    fn code_length(&self) -> usize {
        self.k
    }

    fn pmf(&self, d: usize) -> f64 {
        if d == 0 || d > self.k {
            0.0
        } else {
            self.pmf[d - 1]
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        sample_from_cdf(&self.cdf, rng)
    }
}

/// Cumulative sums of a pmf indexed by `d - 1`.
fn cumulative(pmf: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf = Vec::with_capacity(pmf.len());
    for &p in pmf {
        acc += p;
        cdf.push(acc);
    }
    // Guard against floating-point drift so the last bucket always catches.
    if let Some(last) = cdf.last_mut() {
        *last = 1.0;
    }
    cdf
}

/// Inverse-CDF sampling by binary search; returns a degree in `1..=cdf.len()`.
fn sample_from_cdf<R: Rng + ?Sized>(cdf: &[f64], rng: &mut R) -> usize {
    let u: f64 = rng.gen();
    match cdf.binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf values are finite")) {
        Ok(i) => i + 1,
        Err(i) => (i + 1).min(cdf.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_soliton_rejects_zero_k() {
        assert_eq!(IdealSoliton::new(0).unwrap_err(), LtError::EmptyCode);
    }

    #[test]
    fn ideal_soliton_pmf_sums_to_one() {
        for k in [1, 2, 10, 100, 1000] {
            let d = IdealSoliton::new(k).unwrap();
            let sum: f64 = (1..=k).map(|i| d.pmf(i)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "k={k}, sum={sum}");
        }
    }

    #[test]
    fn ideal_soliton_known_values() {
        let d = IdealSoliton::new(4).unwrap();
        assert!((d.pmf(1) - 0.25).abs() < 1e-12);
        assert!((d.pmf(2) - 0.5).abs() < 1e-12);
        assert!((d.pmf(3) - 1.0 / 6.0).abs() < 1e-12);
        assert!((d.pmf(4) - 1.0 / 12.0).abs() < 1e-12);
        assert_eq!(d.pmf(0), 0.0);
        assert_eq!(d.pmf(5), 0.0);
    }

    #[test]
    fn robust_soliton_rejects_bad_parameters() {
        assert_eq!(RobustSoliton::new(0, 0.1, 0.5).unwrap_err(), LtError::EmptyCode);
        assert!(matches!(
            RobustSoliton::new(16, 0.0, 0.5),
            Err(LtError::InvalidDistributionParameter { parameter: "c", .. })
        ));
        assert!(matches!(
            RobustSoliton::new(16, -1.0, 0.5),
            Err(LtError::InvalidDistributionParameter { parameter: "c", .. })
        ));
        assert!(matches!(
            RobustSoliton::new(16, 0.1, 0.0),
            Err(LtError::InvalidDistributionParameter { parameter: "delta", .. })
        ));
        assert!(matches!(
            RobustSoliton::new(16, 0.1, 1.0),
            Err(LtError::InvalidDistributionParameter { parameter: "delta", .. })
        ));
    }

    #[test]
    fn robust_soliton_pmf_sums_to_one() {
        for k in [2, 16, 128, 1024, 2048] {
            let d = RobustSoliton::for_code_length(k).unwrap();
            let sum: f64 = (1..=k).map(|i| d.pmf(i)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "k={k}, sum={sum}");
        }
    }

    #[test]
    fn robust_soliton_has_majority_low_degree_mass() {
        // The paper claims "more than 50% of encoded packets of degree 1 or 2";
        // with the standard parameters (c = 0.1, δ = 0.5) the exact mass of
        // degrees {1, 2} is ≈ 0.45 and crossing one half requires degree 3 as
        // well. We check both: degrees {1, 2} dominate (≫ any other single
        // degree) and degrees {1, 2, 3} carry an absolute majority.
        for k in [128, 512, 2048] {
            let d = RobustSoliton::for_code_length(k).unwrap();
            assert!(d.low_degree_mass() > 0.4, "k={k}: low-degree mass {}", d.low_degree_mass());
            let mass_up_to_3 = d.low_degree_mass() + d.pmf(3);
            assert!(mass_up_to_3 > 0.5, "k={k}: mass(d<=3) = {mass_up_to_3}");
        }
    }

    #[test]
    fn robust_soliton_mean_degree_is_logarithmic() {
        // Mean degree should be Θ(log k): comfortably below k and growing slowly.
        let d512 = RobustSoliton::for_code_length(512).unwrap();
        let d4096 = RobustSoliton::for_code_length(4096).unwrap();
        assert!(d512.mean_degree() > 2.0);
        assert!(d512.mean_degree() < 30.0);
        assert!(d4096.mean_degree() > d512.mean_degree());
        assert!(d4096.mean_degree() < 40.0);
    }

    #[test]
    fn robust_soliton_spike_is_within_range() {
        for k in [4, 64, 2048] {
            let d = RobustSoliton::for_code_length(k).unwrap();
            assert!(d.spike_degree() >= 1 && d.spike_degree() <= k);
            // The spike should carry visible extra mass relative to its Ideal
            // Soliton neighbourhood (except in degenerate small-k cases).
            if k >= 64 {
                let s = d.spike_degree();
                assert!(d.pmf(s) > d.pmf(s + 1), "spike at {s} not visible for k={k}");
            }
        }
    }

    #[test]
    fn robust_soliton_beta_is_modest_overhead() {
        let d = RobustSoliton::for_code_length(2048).unwrap();
        assert!(d.beta() > 1.0);
        assert!(d.beta() < 2.0, "beta = {}", d.beta());
    }

    #[test]
    fn k_equals_one_always_samples_one() {
        let d = RobustSoliton::for_code_length(1).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..32 {
            assert_eq!(d.sample(&mut rng), 1);
        }
        assert!((d.pmf(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_pmf_chi_square() {
        let k = 64;
        let d = RobustSoliton::for_code_length(k).unwrap();
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 200_000;
        let mut counts = vec![0u64; k + 1];
        for _ in 0..n {
            let s = d.sample(&mut rng);
            assert!((1..=k).contains(&s));
            counts[s] += 1;
        }
        // Compare empirical frequencies with the pmf on the buckets that carry
        // non-negligible mass.
        for (deg, &count) in counts.iter().enumerate().take(k + 1).skip(1) {
            let p = d.pmf(deg);
            if p > 0.005 {
                let emp = count as f64 / n as f64;
                assert!((emp - p).abs() < 0.01, "degree {deg}: pmf {p:.4} vs empirical {emp:.4}");
            }
        }
    }

    #[test]
    fn ideal_sampling_stays_in_range() {
        let d = IdealSoliton::new(16).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((1..=16).contains(&s));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_robust_soliton_valid_for_any_k(k in 1usize..512, c in 0.01f64..1.0, delta in 0.01f64..0.99) {
            let d = RobustSoliton::new(k, c, delta).unwrap();
            let sum: f64 = (1..=k).map(|i| d.pmf(i)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-6);
            prop_assert!(d.pmf(0) == 0.0);
            prop_assert!(d.pmf(k + 1) == 0.0);
            for deg in 1..=k {
                prop_assert!(d.pmf(deg) >= 0.0);
            }
        }

        #[test]
        fn prop_samples_in_range(k in 1usize..256, seed in any::<u64>()) {
            let d = RobustSoliton::for_code_length(k).unwrap();
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..64 {
                let s = d.sample(&mut rng);
                prop_assert!((1..=k).contains(&s));
            }
        }
    }
}
