use ltnc_gf2::{CodeVector, Payload};

/// Identifier of a buffered encoded packet inside a [`TannerGraph`].
///
/// Ids are stable for the lifetime of the packet (they are never reused while
/// the packet is alive) which lets callers keep side tables — the LTNC degree
/// index keyed by packet id, for instance — in sync through
/// [`crate::DecodeEvent`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub(crate) usize);

impl PacketId {
    /// The raw index of this id (useful for diagnostics and dense side tables).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
struct StoredPacket {
    vector: CodeVector,
    payload: Payload,
}

/// The bipartite Tanner graph of buffered encoded packets.
///
/// One side of the graph is the `k` native packets; the other side is the
/// encoded packets currently buffered (all of degree ≥ 2 — degree-1 packets
/// decode immediately and never land here). An edge connects native `x` to
/// encoded packet `y` when `x` participates in the combination `y`. The
/// structure is kept *reduced*: once a native is decoded, the belief
/// propagation decoder removes it from every buffered packet, so a buffered
/// packet's current vector only references undecoded natives.
#[derive(Debug, Clone)]
pub struct TannerGraph {
    k: usize,
    packets: Vec<Option<StoredPacket>>,
    /// For each native index, the ids of live packets whose vector contains it.
    native_edges: Vec<Vec<PacketId>>,
    live: usize,
}

impl TannerGraph {
    /// Creates an empty graph over `k` native packets.
    #[must_use]
    pub fn new(k: usize) -> Self {
        TannerGraph { k, packets: Vec::new(), native_edges: vec![Vec::new(); k], live: 0 }
    }

    /// Code length `k`.
    #[must_use]
    pub fn code_length(&self) -> usize {
        self.k
    }

    /// Number of live (buffered) packets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` when no packet is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts a packet and returns its id. The caller is responsible for only
    /// inserting packets of degree ≥ 1 over the right code length.
    pub fn insert(&mut self, vector: CodeVector, payload: Payload) -> PacketId {
        debug_assert_eq!(vector.len(), self.k);
        let id = PacketId(self.packets.len());
        for x in vector.iter_ones() {
            self.native_edges[x].push(id);
        }
        self.packets.push(Some(StoredPacket { vector, payload }));
        self.live += 1;
        id
    }

    /// Read-only view of a live packet.
    #[must_use]
    pub fn packet(&self, id: PacketId) -> Option<(&CodeVector, &Payload)> {
        self.packets.get(id.0).and_then(|slot| slot.as_ref()).map(|p| (&p.vector, &p.payload))
    }

    /// Current degree of a live packet.
    #[must_use]
    pub fn degree(&self, id: PacketId) -> Option<usize> {
        self.packet(id).map(|(v, _)| v.degree())
    }

    /// Removes a packet and returns its parts. Edges from its natives are
    /// pruned lazily (they are skipped by [`TannerGraph::packets_with_native`]).
    pub fn remove(&mut self, id: PacketId) -> Option<(CodeVector, Payload)> {
        let slot = self.packets.get_mut(id.0)?;
        let removed = slot.take()?;
        self.live -= 1;
        Some((removed.vector, removed.payload))
    }

    /// Ids of the live packets whose (reduced) vector contains native `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= k`.
    #[must_use]
    pub fn packets_with_native(&self, x: usize) -> Vec<PacketId> {
        self.native_edges[x]
            .iter()
            .copied()
            .filter(|id| self.packets[id.0].as_ref().is_some_and(|p| p.vector.contains(x)))
            .collect()
    }

    /// Removes native `x` (whose decoded payload is `value`) from every live
    /// packet that contains it, XOR-ing the payloads. Returns the affected
    /// packet ids with their new degree. The edge lists for `x` are cleared.
    ///
    /// This is the propagation primitive of belief propagation; the number of
    /// returned entries is the number of payload XOR operations performed.
    /// Each XOR has a distinct destination (the buffered packet's payload), so
    /// the work is one word-sliced [`Payload::xor_assign`] per touched packet —
    /// there is nothing to batch here, unlike the encode/recode folds.
    pub fn eliminate_native(&mut self, x: usize, value: &Payload) -> Vec<(PacketId, usize)> {
        let ids = std::mem::take(&mut self.native_edges[x]);
        let mut touched = Vec::with_capacity(ids.len());
        for id in ids {
            if let Some(p) = self.packets[id.0].as_mut() {
                if p.vector.contains(x) {
                    p.vector.clear(x);
                    p.payload.xor_assign(value);
                    touched.push((id, p.vector.degree()));
                }
            }
        }
        touched
    }

    /// Iterates over the ids of all live packets.
    pub fn ids(&self) -> impl Iterator<Item = PacketId> + '_ {
        self.packets.iter().enumerate().filter(|(_, slot)| slot.is_some()).map(|(i, _)| PacketId(i))
    }

    /// Total number of edges (sum of degrees of live packets).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.packets.iter().flatten().map(|p| p.vector.degree()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cv(k: usize, idx: &[usize]) -> CodeVector {
        CodeVector::from_indices(k, idx)
    }

    #[test]
    fn empty_graph() {
        let g = TannerGraph::new(8);
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.code_length(), 8);
        assert!(g.packets_with_native(3).is_empty());
    }

    #[test]
    fn insert_and_lookup() {
        let mut g = TannerGraph::new(8);
        let id = g.insert(cv(8, &[1, 3]), Payload::from_vec(vec![7; 4]));
        assert_eq!(g.len(), 1);
        assert_eq!(g.degree(id), Some(2));
        let (v, p) = g.packet(id).unwrap();
        assert_eq!(v.ones(), vec![1, 3]);
        assert_eq!(p.as_bytes(), &[7; 4]);
        assert_eq!(g.packets_with_native(1), vec![id]);
        assert_eq!(g.packets_with_native(3), vec![id]);
        assert!(g.packets_with_native(2).is_empty());
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn remove_makes_packet_unreachable() {
        let mut g = TannerGraph::new(8);
        let id = g.insert(cv(8, &[1, 3]), Payload::zero(4));
        let (v, _) = g.remove(id).unwrap();
        assert_eq!(v.ones(), vec![1, 3]);
        assert!(g.is_empty());
        assert_eq!(g.packet(id), None);
        assert!(g.packets_with_native(1).is_empty());
        assert_eq!(g.remove(id), None);
    }

    #[test]
    fn ids_are_not_reused() {
        let mut g = TannerGraph::new(4);
        let a = g.insert(cv(4, &[0, 1]), Payload::zero(1));
        g.remove(a);
        let b = g.insert(cv(4, &[2, 3]), Payload::zero(1));
        assert_ne!(a, b);
    }

    #[test]
    fn eliminate_native_reduces_packets() {
        let mut g = TannerGraph::new(4);
        let a = g.insert(cv(4, &[0, 1]), Payload::from_vec(vec![0b11]));
        let b = g.insert(cv(4, &[1, 2, 3]), Payload::from_vec(vec![0b111]));
        let touched = g.eliminate_native(1, &Payload::from_vec(vec![0b01]));
        let mut touched_ids: Vec<_> = touched.iter().map(|&(id, _)| id).collect();
        touched_ids.sort();
        assert_eq!(touched_ids, vec![a, b]);
        assert_eq!(g.degree(a), Some(1));
        assert_eq!(g.degree(b), Some(2));
        assert_eq!(g.packet(a).unwrap().1.as_bytes(), &[0b10]);
        assert_eq!(g.packet(b).unwrap().1.as_bytes(), &[0b110]);
        // Edges for native 1 are gone.
        assert!(g.packets_with_native(1).is_empty());
    }

    #[test]
    fn eliminate_native_skips_removed_packets() {
        let mut g = TannerGraph::new(4);
        let a = g.insert(cv(4, &[0, 1]), Payload::from_vec(vec![1]));
        g.remove(a);
        let touched = g.eliminate_native(1, &Payload::from_vec(vec![9]));
        assert!(touched.is_empty());
    }

    #[test]
    fn packets_with_native_filters_stale_edges() {
        let mut g = TannerGraph::new(4);
        let a = g.insert(cv(4, &[0, 1]), Payload::from_vec(vec![1]));
        // Eliminating native 0 leaves a stale edge entry for packet `a` only
        // under native 0 (cleared), not under native 1.
        g.eliminate_native(0, &Payload::from_vec(vec![2]));
        assert_eq!(g.packets_with_native(1), vec![a]);
        assert!(g.packets_with_native(0).is_empty());
    }

    #[test]
    fn ids_iterates_live_packets_only() {
        let mut g = TannerGraph::new(4);
        let a = g.insert(cv(4, &[0, 1]), Payload::zero(1));
        let b = g.insert(cv(4, &[2, 3]), Payload::zero(1));
        g.remove(a);
        let ids: Vec<_> = g.ids().collect();
        assert_eq!(ids, vec![b]);
    }
}
