use core::fmt;

/// Errors produced by the LT encoder/decoder.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LtError {
    /// The code length `k` must be at least 1.
    EmptyCode,
    /// The native packets handed to the encoder have inconsistent sizes.
    InconsistentPayloadSizes {
        /// Size of the first payload.
        expected: usize,
        /// Index of the first offending payload.
        index: usize,
        /// Its size.
        found: usize,
    },
    /// A Soliton distribution parameter was out of range.
    InvalidDistributionParameter {
        /// Name of the parameter (`"c"` or `"delta"`).
        parameter: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A packet with a different code length or payload size was inserted.
    PacketMismatch {
        /// Expected value (code length or payload size).
        expected: usize,
        /// Found value.
        found: usize,
    },
    /// The requested native packet has not been decoded yet.
    NotDecoded {
        /// Index of the native packet.
        index: usize,
    },
}

impl fmt::Display for LtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LtError::EmptyCode => write!(f, "code length k must be at least 1"),
            LtError::InconsistentPayloadSizes { expected, index, found } => {
                write!(f, "native packet {index} has size {found}, expected {expected}")
            }
            LtError::InvalidDistributionParameter { parameter, value } => {
                write!(f, "invalid Soliton parameter {parameter} = {value}")
            }
            LtError::PacketMismatch { expected, found } => {
                write!(f, "packet mismatch: expected {expected}, found {found}")
            }
            LtError::NotDecoded { index } => write!(f, "native packet {index} is not decoded yet"),
        }
    }
}

impl std::error::Error for LtError {}
