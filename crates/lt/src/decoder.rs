use std::collections::VecDeque;

use ltnc_gf2::{EncodedPacket, Payload};

use crate::tanner::{PacketId, TannerGraph};
use crate::LtError;

/// What happened to an inserted packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The packet reduced to the zero combination against already-decoded
    /// natives: it brought no information.
    Redundant,
    /// The packet was stored in the Tanner graph at degree ≥ 2.
    Buffered(PacketId),
    /// The packet (after reduction) had degree 1 and triggered belief
    /// propagation; at least one new native packet was decoded.
    Progress,
}

/// Fine-grained events emitted while processing an insertion.
///
/// `ltnc-core` consumes these to keep its auxiliary structures (degree index,
/// connected components of degree ≤ 2 packets, redundancy bookkeeping) in sync
/// with the decoder without re-implementing the peeling logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeEvent {
    /// A packet entered the Tanner graph with the given (reduced) degree.
    PacketBuffered {
        /// Id of the packet in the Tanner graph.
        id: PacketId,
        /// Its degree at insertion time (≥ 2).
        degree: usize,
    },
    /// A buffered packet lost one native (propagation) and now has this degree (≥ 2).
    PacketReduced {
        /// Id of the packet in the Tanner graph.
        id: PacketId,
        /// Its new degree.
        new_degree: usize,
    },
    /// A buffered packet was consumed: it reached degree 1 (and decoded a
    /// native) or degree 0, and left the Tanner graph.
    PacketConsumed {
        /// Id of the packet that left the graph.
        id: PacketId,
    },
    /// A native packet was decoded.
    NativeDecoded {
        /// Index of the decoded native packet.
        index: usize,
    },
}

/// Report returned by [`BpDecoder::insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertReport {
    /// What happened to the inserted packet.
    pub outcome: InsertOutcome,
    /// Native packets decoded as a consequence of this insertion, in decode order.
    pub newly_decoded: Vec<usize>,
    /// Every event triggered by this insertion, in order.
    pub events: Vec<DecodeEvent>,
}

/// The belief-propagation (peeling) decoder of LT codes.
///
/// Maintains the set of decoded native payloads and a [`TannerGraph`] of
/// buffered encoded packets reduced against them. Every time a packet of
/// degree 1 appears — either received directly or produced by reduction — the
/// corresponding native is decoded and *propagated*: it is XOR-ed out of every
/// buffered packet that contains it, which may release further degree-1
/// packets (the *ripple*).
///
/// Decoding cost is `O(m)` payload work per edge removed, i.e. `O(m·k·log k)`
/// overall when packet degrees follow the Robust Soliton distribution — the
/// low-complexity property that motivates LTNC.
#[derive(Debug, Clone)]
pub struct BpDecoder {
    k: usize,
    payload_size: usize,
    graph: TannerGraph,
    decoded: Vec<Option<Payload>>,
    decoded_count: usize,
    received: u64,
    redundant: u64,
    payload_xor_ops: u64,
    edge_updates: u64,
}

impl BpDecoder {
    /// Creates a decoder for `k` native packets of `payload_size` bytes each.
    #[must_use]
    pub fn new(k: usize, payload_size: usize) -> Self {
        BpDecoder {
            k,
            payload_size,
            graph: TannerGraph::new(k),
            decoded: vec![None; k],
            decoded_count: 0,
            received: 0,
            redundant: 0,
            payload_xor_ops: 0,
            edge_updates: 0,
        }
    }

    /// Code length `k`.
    #[must_use]
    pub fn code_length(&self) -> usize {
        self.k
    }

    /// Payload size `m` in bytes.
    #[must_use]
    pub fn payload_size(&self) -> usize {
        self.payload_size
    }

    /// Number of native packets decoded so far.
    #[must_use]
    pub fn decoded_count(&self) -> usize {
        self.decoded_count
    }

    /// Returns `true` once all `k` native packets are decoded.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.decoded_count == self.k
    }

    /// Returns `true` when native packet `index` has been decoded.
    ///
    /// # Panics
    ///
    /// Panics if `index >= k`.
    #[must_use]
    pub fn is_decoded(&self, index: usize) -> bool {
        self.decoded[index].is_some()
    }

    /// The decoded payload of native packet `index`, if available.
    ///
    /// # Panics
    ///
    /// Panics if `index >= k`.
    #[must_use]
    pub fn native(&self, index: usize) -> Option<&Payload> {
        self.decoded[index].as_ref()
    }

    /// All decoded payloads in native order.
    ///
    /// # Errors
    ///
    /// Returns [`LtError::NotDecoded`] with the first missing index when
    /// decoding is not complete.
    pub fn into_natives(self) -> Result<Vec<Payload>, LtError> {
        let mut out = Vec::with_capacity(self.k);
        for (i, slot) in self.decoded.into_iter().enumerate() {
            match slot {
                Some(p) => out.push(p),
                None => return Err(LtError::NotDecoded { index: i }),
            }
        }
        Ok(out)
    }

    /// The Tanner graph of buffered (not yet consumed) packets.
    #[must_use]
    pub fn graph(&self) -> &TannerGraph {
        &self.graph
    }

    /// Number of packets handed to [`BpDecoder::insert`] so far.
    #[must_use]
    pub fn received_count(&self) -> u64 {
        self.received
    }

    /// Number of inserted packets that reduced to the zero combination.
    #[must_use]
    pub fn redundant_count(&self) -> u64 {
        self.redundant
    }

    /// Number of `m`-byte payload XOR operations performed so far (data-plane cost).
    #[must_use]
    pub fn payload_xor_ops(&self) -> u64 {
        self.payload_xor_ops
    }

    /// Number of Tanner-graph edge updates performed so far (control-plane cost).
    #[must_use]
    pub fn edge_updates(&self) -> u64 {
        self.edge_updates
    }

    /// Indices of the natives that are still undecoded.
    #[must_use]
    pub fn undecoded(&self) -> Vec<usize> {
        (0..self.k).filter(|&i| self.decoded[i].is_none()).collect()
    }

    /// Inserts an encoded packet and runs belief propagation.
    ///
    /// # Errors
    ///
    /// Returns [`LtError::PacketMismatch`] when the packet's code length or
    /// payload size does not match the decoder.
    pub fn insert(&mut self, packet: EncodedPacket) -> Result<InsertReport, LtError> {
        if packet.code_length() != self.k {
            return Err(LtError::PacketMismatch { expected: self.k, found: packet.code_length() });
        }
        if packet.payload_size() != self.payload_size {
            return Err(LtError::PacketMismatch {
                expected: self.payload_size,
                found: packet.payload_size(),
            });
        }
        self.received += 1;
        let mut events = Vec::new();
        let mut newly_decoded = Vec::new();

        // Reduce the incoming packet against already-decoded natives, folding
        // all of them into the payload in one batched pass.
        let (mut vector, mut payload) = packet.into_parts();
        let mut sources: Vec<&Payload> = Vec::new();
        for x in vector.ones() {
            if let Some(value) = &self.decoded[x] {
                sources.push(value);
                vector.clear(x);
            }
        }
        payload.xor_assign_many(&sources);
        self.payload_xor_ops += sources.len() as u64;
        drop(sources);

        let outcome = match vector.degree() {
            0 => {
                self.redundant += 1;
                InsertOutcome::Redundant
            }
            1 => {
                let x = vector.first_one().expect("degree 1 has a set bit");
                self.decode_native(x, payload, &mut events, &mut newly_decoded);
                self.propagate(&mut events, &mut newly_decoded);
                InsertOutcome::Progress
            }
            d => {
                let id = self.graph.insert(vector, payload);
                events.push(DecodeEvent::PacketBuffered { id, degree: d });
                InsertOutcome::Buffered(id)
            }
        };

        Ok(InsertReport { outcome, newly_decoded, events })
    }

    /// Records a decoded native and queues it for propagation.
    fn decode_native(
        &mut self,
        x: usize,
        value: Payload,
        events: &mut Vec<DecodeEvent>,
        newly_decoded: &mut Vec<usize>,
    ) {
        debug_assert!(self.decoded[x].is_none(), "native {x} decoded twice");
        self.decoded[x] = Some(value);
        self.decoded_count += 1;
        events.push(DecodeEvent::NativeDecoded { index: x });
        newly_decoded.push(x);
    }

    /// Propagates every newly decoded native through the Tanner graph until no
    /// degree-1 packet remains (the ripple).
    fn propagate(&mut self, events: &mut Vec<DecodeEvent>, newly_decoded: &mut Vec<usize>) {
        let mut queue: VecDeque<usize> = newly_decoded.iter().copied().collect();
        // `newly_decoded` already contains the seeds; only append new ones below.
        while let Some(x) = queue.pop_front() {
            // Disjoint field borrows: the decoded value is read in place (no
            // per-ripple payload clone) while the graph is reduced.
            let value = self.decoded[x].as_ref().expect("queued natives are decoded");
            let touched = self.graph.eliminate_native(x, value);
            self.payload_xor_ops += touched.len() as u64;
            self.edge_updates += touched.len() as u64;
            for (id, new_degree) in touched {
                match new_degree {
                    0 => {
                        // The packet became the zero combination: everything it
                        // contained is now decoded. Drop it.
                        self.graph.remove(id);
                        events.push(DecodeEvent::PacketConsumed { id });
                    }
                    1 => {
                        let (vector, payload) =
                            self.graph.remove(id).expect("touched packet is live");
                        events.push(DecodeEvent::PacketConsumed { id });
                        let y = vector.first_one().expect("degree 1 has a set bit");
                        if self.decoded[y].is_none() {
                            self.decode_native(y, payload, events, newly_decoded);
                            queue.push_back(y);
                        }
                    }
                    d => {
                        events.push(DecodeEvent::PacketReduced { id, new_degree: d });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LtEncoder, RobustSoliton};
    use ltnc_gf2::CodeVector;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn natives(k: usize, m: usize) -> Vec<Payload> {
        (0..k)
            .map(|i| Payload::from_vec((0..m).map(|j| (i * 131 + j * 7 + 1) as u8).collect()))
            .collect()
    }

    fn packet(k: usize, indices: &[usize], natives: &[Payload]) -> EncodedPacket {
        let m = natives[0].len();
        let mut payload = Payload::zero(m);
        for &i in indices {
            payload.xor_assign(&natives[i]);
        }
        EncodedPacket::new(CodeVector::from_indices(k, indices), payload)
    }

    #[test]
    fn rejects_mismatched_packets() {
        let mut dec = BpDecoder::new(8, 4);
        let err = dec
            .insert(EncodedPacket::new(CodeVector::singleton(9, 0), Payload::zero(4)))
            .unwrap_err();
        assert_eq!(err, LtError::PacketMismatch { expected: 8, found: 9 });
        let err = dec
            .insert(EncodedPacket::new(CodeVector::singleton(8, 0), Payload::zero(5)))
            .unwrap_err();
        assert_eq!(err, LtError::PacketMismatch { expected: 4, found: 5 });
    }

    #[test]
    fn degree_one_packet_decodes_immediately() {
        let k = 4;
        let nat = natives(k, 3);
        let mut dec = BpDecoder::new(k, 3);
        let report = dec.insert(packet(k, &[2], &nat)).unwrap();
        assert_eq!(report.outcome, InsertOutcome::Progress);
        assert_eq!(report.newly_decoded, vec![2]);
        assert!(dec.is_decoded(2));
        assert_eq!(dec.native(2), Some(&nat[2]));
        assert_eq!(dec.decoded_count(), 1);
    }

    #[test]
    fn duplicate_native_is_redundant() {
        let k = 4;
        let nat = natives(k, 3);
        let mut dec = BpDecoder::new(k, 3);
        dec.insert(packet(k, &[2], &nat)).unwrap();
        let report = dec.insert(packet(k, &[2], &nat)).unwrap();
        assert_eq!(report.outcome, InsertOutcome::Redundant);
        assert_eq!(dec.redundant_count(), 1);
        assert_eq!(dec.decoded_count(), 1);
    }

    #[test]
    fn higher_degree_packet_is_buffered_then_released() {
        let k = 4;
        let nat = natives(k, 3);
        let mut dec = BpDecoder::new(k, 3);

        let report = dec.insert(packet(k, &[0, 1], &nat)).unwrap();
        let id = match report.outcome {
            InsertOutcome::Buffered(id) => id,
            other => panic!("expected buffered, got {other:?}"),
        };
        assert_eq!(report.events, vec![DecodeEvent::PacketBuffered { id, degree: 2 }]);
        assert_eq!(dec.graph().len(), 1);

        // Decoding x0 reduces the buffered packet to degree 1, releasing x1.
        let report = dec.insert(packet(k, &[0], &nat)).unwrap();
        assert_eq!(report.outcome, InsertOutcome::Progress);
        assert_eq!(report.newly_decoded, vec![0, 1]);
        assert!(report.events.contains(&DecodeEvent::PacketConsumed { id }));
        assert!(dec.is_decoded(1));
        assert_eq!(dec.native(1), Some(&nat[1]));
        assert!(dec.graph().is_empty());
    }

    #[test]
    fn incoming_packet_is_reduced_against_decoded_natives() {
        let k = 4;
        let nat = natives(k, 3);
        let mut dec = BpDecoder::new(k, 3);
        dec.insert(packet(k, &[0], &nat)).unwrap();
        dec.insert(packet(k, &[1], &nat)).unwrap();
        // x0 ⊕ x1 ⊕ x2 reduces to x2 on arrival.
        let report = dec.insert(packet(k, &[0, 1, 2], &nat)).unwrap();
        assert_eq!(report.outcome, InsertOutcome::Progress);
        assert_eq!(report.newly_decoded, vec![2]);
        assert_eq!(dec.native(2), Some(&nat[2]));
    }

    #[test]
    fn ripple_cascades_through_chain() {
        // y1 = x0, y2 = x0+x1, y3 = x1+x2, y4 = x2+x3: inserting y2..y4 first
        // buffers them all; then x0 releases the whole chain.
        let k = 4;
        let nat = natives(k, 3);
        let mut dec = BpDecoder::new(k, 3);
        dec.insert(packet(k, &[0, 1], &nat)).unwrap();
        dec.insert(packet(k, &[1, 2], &nat)).unwrap();
        dec.insert(packet(k, &[2, 3], &nat)).unwrap();
        assert_eq!(dec.decoded_count(), 0);
        let report = dec.insert(packet(k, &[0], &nat)).unwrap();
        assert_eq!(report.newly_decoded, vec![0, 1, 2, 3]);
        assert!(dec.is_complete());
        for (i, expected) in nat.iter().enumerate() {
            assert_eq!(dec.native(i), Some(expected));
        }
    }

    #[test]
    fn zero_degree_buffered_packet_is_dropped_during_propagation() {
        // Insert x0+x1 twice; decoding x0 then x1 reduces the duplicate to zero.
        let k = 4;
        let nat = natives(k, 3);
        let mut dec = BpDecoder::new(k, 3);
        dec.insert(packet(k, &[0, 1], &nat)).unwrap();
        dec.insert(packet(k, &[0, 1], &nat)).unwrap();
        assert_eq!(dec.graph().len(), 2);
        let report = dec.insert(packet(k, &[0], &nat)).unwrap();
        // One duplicate decodes x1; the other collapses to degree 0 and is dropped.
        assert_eq!(report.newly_decoded, vec![0, 1]);
        assert!(dec.graph().is_empty());
        assert!(dec.is_decoded(1));
    }

    #[test]
    fn into_natives_requires_completion() {
        let k = 3;
        let nat = natives(k, 2);
        let mut dec = BpDecoder::new(k, 2);
        dec.insert(packet(k, &[0], &nat)).unwrap();
        let err = dec.clone().into_natives().unwrap_err();
        assert_eq!(err, LtError::NotDecoded { index: 1 });
        dec.insert(packet(k, &[1], &nat)).unwrap();
        dec.insert(packet(k, &[2], &nat)).unwrap();
        let out = dec.into_natives().unwrap();
        assert_eq!(out, nat);
    }

    #[test]
    fn undecoded_lists_missing_indices() {
        let k = 4;
        let nat = natives(k, 2);
        let mut dec = BpDecoder::new(k, 2);
        dec.insert(packet(k, &[1], &nat)).unwrap();
        assert_eq!(dec.undecoded(), vec![0, 2, 3]);
    }

    #[test]
    fn ops_counters_increase_with_work() {
        let k = 8;
        let nat = natives(k, 4);
        let mut dec = BpDecoder::new(k, 4);
        dec.insert(packet(k, &[0, 1], &nat)).unwrap();
        assert_eq!(dec.payload_xor_ops(), 0);
        dec.insert(packet(k, &[0], &nat)).unwrap();
        assert!(dec.payload_xor_ops() >= 1);
        assert!(dec.edge_updates() >= 1);
        assert_eq!(dec.received_count(), 2);
    }

    #[test]
    fn full_decode_with_source_encoder() {
        let k = 64;
        let m = 16;
        let nat = natives(k, m);
        let dist = RobustSoliton::for_code_length(k).unwrap();
        let mut enc = LtEncoder::new(nat.clone(), dist).unwrap();
        let mut rng = SmallRng::seed_from_u64(2024);
        let mut dec = BpDecoder::new(k, m);
        let mut sent = 0;
        while !dec.is_complete() {
            dec.insert(enc.encode(&mut rng)).unwrap();
            sent += 1;
            assert!(sent < 20 * k, "decoder failed to converge");
        }
        for (i, expected) in nat.iter().enumerate() {
            assert_eq!(dec.native(i), Some(expected));
        }
        // LT codes need (1+ε)·k packets; ε should be modest for k = 64.
        assert!(sent < 4 * k, "needed {sent} packets for k = {k}");
    }

    #[test]
    fn decode_cost_scales_quasilinearly() {
        // The number of payload XORs per decoded native should stay close to
        // the mean degree (O(log k)), far below k (what Gaussian elimination
        // would pay). This is the heart of the paper's Figure 8d claim.
        let k = 256;
        let m = 1;
        let nat = natives(k, m);
        let dist = RobustSoliton::for_code_length(k).unwrap();
        let mut enc = LtEncoder::new(nat, dist).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut dec = BpDecoder::new(k, m);
        while !dec.is_complete() {
            dec.insert(enc.encode(&mut rng)).unwrap();
        }
        let xors_per_native = dec.payload_xor_ops() as f64 / k as f64;
        assert!(
            xors_per_native < 3.0 * (k as f64).ln(),
            "payload XORs per native {xors_per_native} too high"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Whatever order packets arrive in, decoded natives always carry the
        /// original payloads (never garbage), and decoding completes once the
        /// unit packets have all been seen.
        #[test]
        fn prop_decoded_values_are_always_correct(
            seed in any::<u64>(),
            k in 4usize..32,
        ) {
            let m = 4;
            let nat = natives(k, m);
            let dist = RobustSoliton::for_code_length(k).unwrap();
            let mut enc = LtEncoder::new(nat.clone(), dist).unwrap();
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut dec = BpDecoder::new(k, m);
            for _ in 0..6 * k {
                dec.insert(enc.encode(&mut rng)).unwrap();
                for (i, expected) in nat.iter().enumerate() {
                    if let Some(p) = dec.native(i) {
                        prop_assert_eq!(p, expected);
                    }
                }
                if dec.is_complete() {
                    break;
                }
            }
            // Force completion with unit packets and re-check.
            for (i, native) in nat.iter().enumerate() {
                if !dec.is_decoded(i) {
                    dec.insert(EncodedPacket::native(k, i, native.clone())).unwrap();
                }
            }
            prop_assert!(dec.is_complete());
            for (i, expected) in nat.iter().enumerate() {
                prop_assert_eq!(dec.native(i).unwrap(), expected);
            }
        }
    }
}
