use std::collections::HashMap;

use ltnc_lt::PacketId;

/// The index `S` of buffered encoded packets grouped by their current degree
/// (first row of Table I in the paper: "find a set of encoded packets to
/// build a fresh one of a given degree").
///
/// Decoded native packets play the role of `S[1]`; they are tracked by the
/// node itself (the belief-propagation decoder owns their payloads), so this
/// index only stores buffered packets, whose degree is always ≥ 2. The index
/// must be kept in sync with the Tanner graph through the decoder's
/// [`ltnc_lt::DecodeEvent`]s: packets move buckets when belief propagation
/// reduces them and leave when they are consumed.
#[derive(Debug, Clone, Default)]
pub struct DegreeIndex {
    /// `buckets[d]` holds the ids of buffered packets of current degree `d`.
    /// Bucket 0 and 1 stay empty (degree-0/1 packets never stay buffered).
    buckets: Vec<Vec<PacketId>>,
    /// Reverse map: id -> (degree, position in bucket) for O(1) removal.
    positions: HashMap<PacketId, (usize, usize)>,
}

impl DegreeIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        DegreeIndex::default()
    }

    /// Number of indexed packets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` when no packet is indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of indexed packets of exactly degree `d` (`n(d)` in the paper).
    #[must_use]
    pub fn count(&self, degree: usize) -> usize {
        self.buckets.get(degree).map_or(0, Vec::len)
    }

    /// Largest degree with at least one packet, or `None` when empty.
    #[must_use]
    pub fn max_degree(&self) -> Option<usize> {
        self.buckets.iter().rposition(|b| !b.is_empty())
    }

    /// The ids currently indexed at degree `d`.
    #[must_use]
    pub fn bucket(&self, degree: usize) -> &[PacketId] {
        self.buckets.get(degree).map_or(&[], Vec::as_slice)
    }

    /// Current degree of an indexed packet.
    #[must_use]
    pub fn degree_of(&self, id: PacketId) -> Option<usize> {
        self.positions.get(&id).map(|&(d, _)| d)
    }

    /// Returns `true` when the packet is indexed.
    #[must_use]
    pub fn contains(&self, id: PacketId) -> bool {
        self.positions.contains_key(&id)
    }

    /// Adds a packet at the given degree.
    ///
    /// # Panics
    ///
    /// Panics if the id is already indexed (packets are inserted exactly once).
    pub fn insert(&mut self, id: PacketId, degree: usize) {
        assert!(!self.positions.contains_key(&id), "packet {id:?} is already indexed");
        if degree >= self.buckets.len() {
            self.buckets.resize(degree + 1, Vec::new());
        }
        let pos = self.buckets[degree].len();
        self.buckets[degree].push(id);
        self.positions.insert(id, (degree, pos));
    }

    /// Moves a packet to a new degree bucket (no-op if the degree is unchanged).
    ///
    /// # Panics
    ///
    /// Panics if the id is not indexed.
    pub fn update(&mut self, id: PacketId, new_degree: usize) {
        let (old_degree, _) =
            *self.positions.get(&id).unwrap_or_else(|| panic!("packet {id:?} is not indexed"));
        if old_degree == new_degree {
            return;
        }
        self.remove(id);
        self.insert(id, new_degree);
    }

    /// Removes a packet from the index. Returns its last known degree.
    ///
    /// Removal is O(1) (swap-remove within the bucket).
    pub fn remove(&mut self, id: PacketId) -> Option<usize> {
        let (degree, pos) = self.positions.remove(&id)?;
        let bucket = &mut self.buckets[degree];
        bucket.swap_remove(pos);
        if let Some(&moved) = bucket.get(pos) {
            self.positions.insert(moved, (degree, pos));
        }
        Some(degree)
    }

    /// Sum of `min(i, cap) · n(i)` for `i ≤ cap` — the first reachability bound
    /// of §III-B.1: a degree `d` is unreachable when
    /// `decoded + Σ_{i=2}^{d} i·n(i) < d` (the decoded-native count is added by
    /// the caller since decoded packets have degree 1).
    #[must_use]
    pub fn degree_mass_up_to(&self, cap: usize) -> usize {
        self.buckets.iter().enumerate().take(cap + 1).map(|(d, bucket)| d * bucket.len()).sum()
    }

    /// Iterates over all indexed ids, lowest degree first (order within a
    /// bucket is unspecified).
    pub fn iter(&self) -> impl Iterator<Item = (usize, PacketId)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .flat_map(|(d, bucket)| bucket.iter().map(move |&id| (d, id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltnc_gf2::{CodeVector, Payload};
    use ltnc_lt::TannerGraph;

    /// Obtain real `PacketId`s by inserting into a Tanner graph.
    fn ids(n: usize) -> Vec<PacketId> {
        let mut g = TannerGraph::new(n + 2);
        (0..n)
            .map(|i| g.insert(CodeVector::from_indices(n + 2, &[i, i + 1]), Payload::zero(1)))
            .collect()
    }

    #[test]
    fn empty_index() {
        let idx = DegreeIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
        assert_eq!(idx.count(2), 0);
        assert_eq!(idx.max_degree(), None);
        assert_eq!(idx.degree_mass_up_to(10), 0);
        assert!(idx.bucket(3).is_empty());
    }

    #[test]
    fn insert_and_lookup() {
        let ids = ids(3);
        let mut idx = DegreeIndex::new();
        idx.insert(ids[0], 2);
        idx.insert(ids[1], 3);
        idx.insert(ids[2], 3);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.count(2), 1);
        assert_eq!(idx.count(3), 2);
        assert_eq!(idx.max_degree(), Some(3));
        assert_eq!(idx.degree_of(ids[1]), Some(3));
        assert!(idx.contains(ids[0]));
        assert_eq!(idx.bucket(3).len(), 2);
    }

    #[test]
    #[should_panic(expected = "already indexed")]
    fn double_insert_panics() {
        let ids = ids(1);
        let mut idx = DegreeIndex::new();
        idx.insert(ids[0], 2);
        idx.insert(ids[0], 3);
    }

    #[test]
    fn update_moves_between_buckets() {
        let ids = ids(2);
        let mut idx = DegreeIndex::new();
        idx.insert(ids[0], 5);
        idx.insert(ids[1], 5);
        idx.update(ids[0], 4);
        assert_eq!(idx.count(5), 1);
        assert_eq!(idx.count(4), 1);
        assert_eq!(idx.degree_of(ids[0]), Some(4));
        assert_eq!(idx.degree_of(ids[1]), Some(5));
        // No-op update keeps everything consistent.
        idx.update(ids[0], 4);
        assert_eq!(idx.count(4), 1);
    }

    #[test]
    fn remove_swaps_positions_correctly() {
        let ids = ids(3);
        let mut idx = DegreeIndex::new();
        for &id in &ids {
            idx.insert(id, 2);
        }
        assert_eq!(idx.remove(ids[0]), Some(2));
        assert_eq!(idx.len(), 2);
        assert!(!idx.contains(ids[0]));
        // The swapped packet is still reachable and removable.
        assert_eq!(idx.remove(ids[2]), Some(2));
        assert_eq!(idx.remove(ids[1]), Some(2));
        assert!(idx.is_empty());
        assert_eq!(idx.remove(ids[1]), None);
    }

    #[test]
    fn degree_mass_matches_paper_example() {
        // Example of §III-B.1: packets of degrees {3, 2, 2} give a maximum
        // reachable degree of 2·2 + 3 = 7.
        let ids = ids(3);
        let mut idx = DegreeIndex::new();
        idx.insert(ids[0], 3);
        idx.insert(ids[1], 2);
        idx.insert(ids[2], 2);
        assert_eq!(idx.degree_mass_up_to(7), 7);
        assert_eq!(idx.degree_mass_up_to(2), 4);
        assert_eq!(idx.degree_mass_up_to(1), 0);
    }

    #[test]
    fn iter_visits_everything_in_degree_order() {
        let ids = ids(3);
        let mut idx = DegreeIndex::new();
        idx.insert(ids[0], 4);
        idx.insert(ids[1], 2);
        idx.insert(ids[2], 4);
        let degrees: Vec<usize> = idx.iter().map(|(d, _)| d).collect();
        assert_eq!(degrees, vec![2, 4, 4]);
    }
}
