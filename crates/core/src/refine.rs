use ltnc_gf2::EncodedPacket;
use ltnc_metrics::OpKind;

use crate::LtncNode;

impl LtncNode {
    /// Algorithm 2 of the paper: refines a freshly built packet by replacing
    /// over-represented native packets with under-represented ones, without
    /// changing the packet's degree.
    ///
    /// A native `x` appearing in `z` can be replaced by `x'` when `x ⊕ x'` can
    /// be generated from decoded natives and degree-2 packets (i.e. `x` and
    /// `x'` are in the same connected component), `x'` is strictly less
    /// frequent than `x` in the packets this node has already sent, and `x'`
    /// does not already appear in the packet. Adding `x ⊕ x'` then swaps the
    /// two (`x ⊕ x = 0`).
    pub(crate) fn refine_packet(&mut self, z: EncodedPacket) -> EncodedPacket {
        let original_members = z.vector().ones();
        let mut refined = z;
        for x in original_members {
            self.recode_counters.incr(OpKind::RefineStep);
            // `x` may have been swapped back out by an earlier substitution in
            // unusual component shapes; only replace natives still present.
            if !refined.vector().contains(x) {
                continue;
            }
            // Candidates: same component, strictly less frequent, not already in z'.
            let candidates: Vec<usize> = self.cc.members_of(x).to_vec();
            let Some(best) =
                self.occurrences.best_substitute(x, &candidates, |c| !refined.vector().contains(c))
            else {
                continue;
            };
            let Some(pair) = self.pair_packet(x, best) else {
                // The component relation promised x ⊕ best is generatable; if
                // the supporting degree-2 packets were consumed in the meantime
                // (both natives decoded), pair_packet already handled it, so
                // reaching this point means we simply skip the substitution.
                continue;
            };
            refined.xor_assign(&pair);
            self.recode_counters.incr(OpKind::PayloadXor);
            self.recode_counters.incr(OpKind::VectorXor);
            debug_assert!(!refined.vector().contains(x));
            debug_assert!(refined.vector().contains(best));
        }
        refined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LtncConfig;
    use ltnc_gf2::{CodeVector, Payload};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn natives(k: usize, m: usize) -> Vec<Payload> {
        (0..k)
            .map(|i| Payload::from_vec((0..m).map(|j| (i * 11 + j + 1) as u8).collect()))
            .collect()
    }

    fn packet(k: usize, indices: &[usize], nat: &[Payload]) -> EncodedPacket {
        let mut payload = Payload::zero(nat[0].len());
        for &i in indices {
            payload.xor_assign(&nat[i]);
        }
        EncodedPacket::new(CodeVector::from_indices(k, indices), payload)
    }

    fn assert_consistent(p: &EncodedPacket, nat: &[Payload]) {
        let mut expected = Payload::zero(nat[0].len());
        for i in p.vector().iter_ones() {
            expected.xor_assign(&nat[i]);
        }
        assert_eq!(p.payload(), &expected, "payload does not match code vector");
    }

    #[test]
    fn refinement_preserves_degree_and_consistency() {
        let k = 16;
        let m = 4;
        let nat = natives(k, m);
        let mut node = LtncNode::with_all_natives(k, m, &nat, LtncConfig::default());
        let mut rng = SmallRng::seed_from_u64(17);
        // Skew the occurrence counts: pretend x0..x3 were sent many times.
        for _ in 0..10 {
            node.occurrences.record_sent(&CodeVector::from_indices(k, &[0, 1, 2, 3]));
        }
        let z = node.build_packet(4, &mut rng);
        let d = z.degree();
        let refined = node.refine_packet(z);
        assert_eq!(refined.degree(), d);
        assert_consistent(&refined, &nat);
    }

    #[test]
    fn over_represented_natives_are_swapped_out() {
        // Everything decoded, so every pair is substitutable. x0 is made very
        // frequent; a packet containing x0 must lose it after refinement.
        let k = 8;
        let m = 2;
        let nat = natives(k, m);
        let mut node = LtncNode::with_all_natives(k, m, &nat, LtncConfig::default());
        for _ in 0..5 {
            node.occurrences.record_sent(&CodeVector::from_indices(k, &[0]));
        }
        let z = packet(k, &[0, 1], &nat);
        let refined = node.refine_packet(z);
        assert_eq!(refined.degree(), 2);
        assert!(!refined.vector().contains(0), "frequent native x0 should be replaced");
        assert_consistent(&refined, &nat);
    }

    #[test]
    fn paper_figure4_refinement_example() {
        // Figure 4 / §III-B.3: z = x1⊕x2⊕x3⊕x4⊕x5 (0-based 0..4); x3 (index 2)
        // is over-represented and connected to x7 (index 6) through
        // y4 = x3⊕x5 and y6 = x5⊕x7; x7 is the least frequent. The refined
        // packet is x1⊕x2⊕x4⊕x5⊕x7.
        let k = 7;
        let m = 2;
        let nat = natives(k, m);
        let mut node = LtncNode::new(k, m);
        node.receive(&packet(k, &[2, 4], &nat)); // y4 = x3 ⊕ x5
        node.receive(&packet(k, &[4, 6], &nat)); // y6 = x5 ⊕ x7
                                                 // Occurrence counts: x3 (index 2) frequent, x7 (index 6) never sent.
        for _ in 0..4 {
            node.occurrences.record_sent(&CodeVector::from_indices(k, &[2]));
        }
        for _ in 0..2 {
            node.occurrences.record_sent(&CodeVector::from_indices(k, &[4])); // x5 somewhat frequent
        }
        for _ in 0..1 {
            node.occurrences.record_sent(&CodeVector::from_indices(k, &[0, 1, 3]));
        }

        let z = packet(k, &[0, 1, 2, 3, 4], &nat);
        let refined = node.refine_packet(z);
        assert_eq!(refined.degree(), 5);
        assert!(!refined.vector().contains(2), "x3 must be replaced");
        assert!(refined.vector().contains(6), "x7 must be introduced");
        assert_consistent(&refined, &nat);
        assert_eq!(refined.vector().ones(), vec![0, 1, 3, 4, 6]);
    }

    #[test]
    fn no_substitution_when_no_candidate_is_less_frequent() {
        let k = 8;
        let m = 2;
        let nat = natives(k, m);
        let mut node = LtncNode::with_all_natives(k, m, &nat, LtncConfig::default());
        // Uniform occurrence counts: nothing to improve.
        node.occurrences.record_sent(&CodeVector::from_indices(k, &(0..k).collect::<Vec<_>>()));
        let z = packet(k, &[1, 2, 3], &nat);
        let refined = node.refine_packet(z.clone());
        assert_eq!(refined, z);
    }

    #[test]
    fn refinement_without_connectivity_is_a_noop() {
        // Nothing decoded and no degree-2 packets: components are singletons,
        // so no substitution is possible.
        let k = 8;
        let m = 2;
        let nat = natives(k, m);
        let mut node = LtncNode::new(k, m);
        node.receive(&packet(k, &[1, 2, 3], &nat));
        for _ in 0..3 {
            node.occurrences.record_sent(&CodeVector::from_indices(k, &[1, 2, 3]));
        }
        let z = packet(k, &[1, 2, 3], &nat);
        let refined = node.refine_packet(z.clone());
        assert_eq!(refined, z);
    }

    #[test]
    fn refinement_reduces_occurrence_variance_over_time() {
        // Full-knowledge node recoding many packets: with refinement the
        // spread of native occurrences must stay small (paper: ≈ 0.1 % RSD),
        // and must be smaller than without refinement.
        let k = 64;
        let m = 1;
        let nat = natives(k, m);
        let mut with = LtncNode::with_all_natives(k, m, &nat, LtncConfig::default());
        let mut without =
            LtncNode::with_all_natives(k, m, &nat, LtncConfig::default().without_refinement());
        let mut rng_a = SmallRng::seed_from_u64(3);
        let mut rng_b = SmallRng::seed_from_u64(3);
        for _ in 0..400 {
            with.recode(&mut rng_a).unwrap();
            without.recode(&mut rng_b).unwrap();
        }
        let rsd_with = with.occurrence_spread().relative_std_dev;
        let rsd_without = without.occurrence_spread().relative_std_dev;
        assert!(
            rsd_with < rsd_without,
            "refinement should reduce the spread: {rsd_with} vs {rsd_without}"
        );
        assert!(rsd_with < 0.25, "relative std-dev too high: {rsd_with}");
    }
}
