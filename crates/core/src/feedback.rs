use ltnc_gf2::EncodedPacket;
use ltnc_metrics::OpKind;

use crate::components::DECODED_CLASS;
use crate::LtncNode;

impl LtncNode {
    /// "Smart" packet construction of §III-C.2: given the receiver's
    /// component labels (`cc_r`, obtained over the feedback channel), builds a
    /// low-degree packet guaranteed to be innovative for the receiver, or
    /// returns `None` when no such degree-1/2 packet exists.
    ///
    /// * degree 1 — a native decoded at the sender but not at the receiver;
    /// * degree 2 — Algorithm 4: a pair `x ⊕ x'` that the sender can generate
    ///   (same component at the sender) but the receiver cannot (different
    ///   components at the receiver), found by mapping sender components onto
    ///   receiver components and emitting on the first inconsistency.
    ///
    /// # Panics
    ///
    /// Panics if `receiver_labels.len() != k`.
    pub fn smart_packet(&mut self, receiver_labels: &[usize]) -> Option<EncodedPacket> {
        assert_eq!(receiver_labels.len(), self.k, "receiver labels must cover all k natives");

        // Degree 1: a native we decoded that the receiver has not.
        for &x in self.cc.decoded_members() {
            self.recode_counters.incr(OpKind::RedundancyCheck);
            if receiver_labels[x] != DECODED_CLASS {
                let payload = self.decoder.native(x).expect("decoded native").clone();
                self.recode_counters.incr(OpKind::PayloadXor);
                return Some(EncodedPacket::native(self.k, x, payload));
            }
        }

        // Degree 2 (Algorithm 4): map each sender component to the receiver
        // component of its first visited member; a second member landing in a
        // different receiver component yields an innovative pair.
        let mut sigma: Vec<Option<(usize, usize)>> = vec![None; self.k + 1];
        for (i, &receiver_label_i) in receiver_labels.iter().enumerate().take(self.k) {
            self.recode_counters.incr(OpKind::RedundancyCheck);
            let sender_label = self.cc.label_of(i);
            match sigma[sender_label] {
                None => sigma[sender_label] = Some((receiver_label_i, i)),
                Some((receiver_label, representative)) => {
                    if receiver_label != receiver_label_i {
                        if let Some(pair) = self.pair_packet(representative, i) {
                            return Some(pair);
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LtncConfig;
    use ltnc_gf2::{CodeVector, Payload};

    fn natives(k: usize, m: usize) -> Vec<Payload> {
        (0..k)
            .map(|i| Payload::from_vec((0..m).map(|j| (i * 17 + j + 1) as u8).collect()))
            .collect()
    }

    fn packet(k: usize, indices: &[usize], nat: &[Payload]) -> EncodedPacket {
        let mut payload = Payload::zero(nat[0].len());
        for &i in indices {
            payload.xor_assign(&nat[i]);
        }
        EncodedPacket::new(CodeVector::from_indices(k, indices), payload)
    }

    fn assert_consistent(p: &EncodedPacket, nat: &[Payload]) {
        let mut expected = Payload::zero(nat[0].len());
        for i in p.vector().iter_ones() {
            expected.xor_assign(&nat[i]);
        }
        assert_eq!(p.payload(), &expected);
    }

    #[test]
    fn degree_one_rule_sends_a_missing_native() {
        let k = 8;
        let m = 2;
        let nat = natives(k, m);
        let sender = &mut LtncNode::with_all_natives(k, m, &nat, LtncConfig::default());
        let mut receiver = LtncNode::new(k, m);
        receiver.receive(&packet(k, &[0], &nat));
        receiver.receive(&packet(k, &[1], &nat));

        let labels = receiver.component_labels();
        let p = sender.smart_packet(&labels).expect("an innovative native exists");
        assert_eq!(p.degree(), 1);
        let x = p.vector().first_one().unwrap();
        assert!(!receiver.is_decoded(x), "sent native must be new to the receiver");
        assert_consistent(&p, &nat);
        assert_eq!(receiver.receive(&p), crate::ReceiveOutcome::Progress(1));
    }

    #[test]
    fn degree_two_rule_bridges_receiver_components() {
        // Mirrors Figure 6: sender has x3 ~ x5 ~ x7 in one component while the
        // receiver has x3 alone and {x5, x7} together, so x3 ⊕ x5 (or x3 ⊕ x7)
        // is innovative for the receiver and generatable by the sender.
        let k = 7;
        let m = 2;
        let nat = natives(k, m);
        let mut sender = LtncNode::new(k, m);
        sender.receive(&packet(k, &[2, 4], &nat)); // x3 ⊕ x5
        sender.receive(&packet(k, &[4, 6], &nat)); // x5 ⊕ x7
        let mut receiver = LtncNode::new(k, m);
        receiver.receive(&packet(k, &[4, 6], &nat)); // receiver only connects x5 ⊕ x7

        let labels = receiver.component_labels();
        let p = sender.smart_packet(&labels).expect("an innovative pair exists");
        assert_eq!(p.degree(), 2);
        assert_consistent(&p, &nat);
        assert!(
            !receiver.is_redundant(p.vector()),
            "smart packet must be innovative for the receiver"
        );
        assert!(receiver.receive(&p).is_useful());
    }

    #[test]
    fn identical_nodes_have_no_smart_packet() {
        let k = 8;
        let m = 2;
        let nat = natives(k, m);
        let mut a = LtncNode::new(k, m);
        let mut b = LtncNode::new(k, m);
        for p in [packet(k, &[0, 1], &nat), packet(k, &[3], &nat)] {
            a.receive(&p);
            b.receive(&p);
        }
        let labels = b.component_labels();
        assert!(a.smart_packet(&labels).is_none());
    }

    #[test]
    fn empty_sender_has_nothing_to_offer() {
        let k = 8;
        let mut sender = LtncNode::new(k, 2);
        let receiver = LtncNode::new(k, 2);
        assert!(sender.smart_packet(&receiver.component_labels()).is_none());
    }

    #[test]
    fn smart_packets_drive_a_receiver_to_completion() {
        // A sender with full knowledge can always find an innovative packet of
        // degree ≤ 2 for any incomplete receiver, so feedback alone completes
        // the transfer in at most k + (k − 1) packets.
        let k = 16;
        let m = 2;
        let nat = natives(k, m);
        let mut sender = LtncNode::with_all_natives(k, m, &nat, LtncConfig::default());
        let mut receiver = LtncNode::new(k, m);
        let mut sent = 0;
        while !receiver.is_complete() {
            let p = sender
                .smart_packet(&receiver.component_labels())
                .expect("sender with full knowledge always has an innovative packet");
            assert!(receiver.receive(&p).is_useful());
            sent += 1;
            assert!(sent <= 2 * k, "too many packets");
        }
        assert_eq!(receiver.decode().unwrap(), nat);
    }

    #[test]
    #[should_panic(expected = "receiver labels")]
    fn mismatched_label_length_panics() {
        let mut sender = LtncNode::new(8, 2);
        sender.smart_packet(&[0; 7]);
    }
}
