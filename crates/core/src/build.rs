use ltnc_gf2::{CodeVector, EncodedPacket, Payload};
use ltnc_lt::PacketId;
use ltnc_metrics::OpKind;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::LtncNode;

/// A packet the build step may combine: either a buffered encoded packet or a
/// decoded native (which plays the role of a degree-1 encoded packet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Candidate {
    Buffered(PacketId),
    Native(usize),
}

impl LtncNode {
    /// Algorithm 1 of the paper: greedily builds a fresh encoded packet of
    /// degree at most `target`, examining available packets by decreasing
    /// degree starting from `target` and skipping any candidate whose
    /// inclusion would not increase the degree or would overshoot it
    /// (collision avoidance).
    pub(crate) fn build_packet<R: Rng + ?Sized>(
        &mut self,
        target: usize,
        rng: &mut R,
    ) -> EncodedPacket {
        let mut vector = CodeVector::zero(self.k);
        let mut payload = Payload::zero(self.payload_size);

        let mut degree = target.min(self.degree_index.max_degree().unwrap_or(1)).max(1);
        let mut candidates = self.candidates_of_degree(degree, target);
        candidates.shuffle(rng);

        while vector.degree() < target && degree > 0 {
            let Some(candidate) = candidates.pop() else {
                // Bucket exhausted: move to the next lower degree.
                degree -= 1;
                if degree == 0 {
                    break;
                }
                candidates = self.candidates_of_degree(degree, target);
                candidates.shuffle(rng);
                continue;
            };
            self.recode_counters.incr(OpKind::BuildCandidate);
            let (cand_vector, cand_payload) = match candidate {
                Candidate::Buffered(id) => {
                    let Some((v, p)) = self.decoder.graph().packet(id) else {
                        continue;
                    };
                    (v.clone(), p.clone())
                }
                Candidate::Native(x) => (
                    CodeVector::singleton(self.k, x),
                    self.decoder.native(x).expect("decoded native").clone(),
                ),
            };
            let combined_degree = vector.xor_degree(&cand_vector);
            if vector.degree() < combined_degree && combined_degree <= target {
                vector.xor_assign(&cand_vector);
                payload.xor_assign(&cand_payload);
                self.recode_counters.incr(OpKind::VectorXor);
                self.recode_counters.incr(OpKind::PayloadXor);
            }
        }
        EncodedPacket::new(vector, payload)
    }

    /// The candidates of exactly the given degree: buffered packets from the
    /// degree index, or the decoded natives when `degree == 1`. Degrees above
    /// `target` are never requested by the caller; the parameter is only used
    /// for the initial clamp.
    fn candidates_of_degree(&self, degree: usize, _target: usize) -> Vec<Candidate> {
        if degree == 1 {
            self.cc.decoded_members().iter().map(|&x| Candidate::Native(x)).collect()
        } else {
            self.degree_index.bucket(degree).iter().map(|&id| Candidate::Buffered(id)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LtncConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn natives(k: usize, m: usize) -> Vec<Payload> {
        (0..k).map(|i| Payload::from_vec((0..m).map(|j| (i * 5 + j + 1) as u8).collect())).collect()
    }

    fn packet(k: usize, indices: &[usize], nat: &[Payload]) -> EncodedPacket {
        let mut payload = Payload::zero(nat[0].len());
        for &i in indices {
            payload.xor_assign(&nat[i]);
        }
        EncodedPacket::new(CodeVector::from_indices(k, indices), payload)
    }

    /// Checks the fundamental invariant: the payload of a built packet always
    /// equals the XOR of the natives named by its code vector.
    fn assert_consistent(p: &EncodedPacket, nat: &[Payload]) {
        let mut expected = Payload::zero(nat[0].len());
        for i in p.vector().iter_ones() {
            expected.xor_assign(&nat[i]);
        }
        assert_eq!(p.payload(), &expected, "payload does not match code vector");
    }

    #[test]
    fn builds_exact_degree_from_full_knowledge() {
        let k = 32;
        let m = 4;
        let nat = natives(k, m);
        let mut node = LtncNode::with_all_natives(k, m, &nat, LtncConfig::default());
        let mut rng = SmallRng::seed_from_u64(5);
        for target in 1..=10 {
            let p = node.build_packet(target, &mut rng);
            assert_eq!(p.degree(), target, "target {target}");
            assert_consistent(&p, &nat);
        }
    }

    #[test]
    fn paper_figure4_example_reaches_degree_five() {
        // Figure 4: k = 7, the node holds x6 (decoded) and encoded packets
        // y1 = x1⊕x2, y2 = x3⊕x4⊕x5, y3 = x1⊕x2⊕x4⊕x5⊕x6⊕x7 (degree 6),
        // y4 = x3⊕x5, y5 = x3⊕x4⊕x5 — wait, the figure's exact contents are:
        // degree buckets: 1 → {x6}, 2 → {y2, y4, y6}, 3 → {y1, y5}, 6 → {y3}.
        // We reproduce the *shape*: a degree-5 build must be possible from the
        // degree-2/3 packets without using the degree-6 one.
        let k = 7;
        let m = 2;
        let nat = natives(k, m);
        let mut node = LtncNode::new(k, m);
        node.receive(&packet(k, &[5], &nat)); // x6 decoded (0-based index 5)
        node.receive(&packet(k, &[0, 1], &nat)); // degree 2
        node.receive(&packet(k, &[2, 4], &nat)); // degree 2 (y4 = x3⊕x5)
        node.receive(&packet(k, &[4, 6], &nat)); // degree 2 (y6 = x5⊕x7)
        node.receive(&packet(k, &[1, 2, 3], &nat)); // degree 3
        node.receive(&packet(k, &[2, 3, 4], &nat)); // degree 3 (y5)
        let mut rng = SmallRng::seed_from_u64(11);
        let mut reached = false;
        for _ in 0..50 {
            let p = node.build_packet(5, &mut rng);
            assert!(p.degree() <= 5);
            assert_consistent(&p, &nat);
            if p.degree() == 5 {
                reached = true;
            }
        }
        assert!(reached, "a degree-5 packet should be buildable");
    }

    #[test]
    fn built_packet_never_exceeds_target() {
        let k = 16;
        let m = 2;
        let nat = natives(k, m);
        let mut node = LtncNode::new(k, m);
        let mut rng = SmallRng::seed_from_u64(23);
        // Mixed bag of packets.
        node.receive(&packet(k, &[0], &nat));
        node.receive(&packet(k, &[1, 2], &nat));
        node.receive(&packet(k, &[3, 4, 5], &nat));
        node.receive(&packet(k, &[6, 7, 8, 9], &nat));
        for target in 1..=8 {
            for _ in 0..20 {
                let p = node.build_packet(target, &mut rng);
                assert!(p.degree() <= target, "degree {} > target {target}", p.degree());
                assert_consistent(&p, &nat);
            }
        }
    }

    #[test]
    fn collisions_are_avoided() {
        // Only two packets are held: x0⊕x1 and x1⊕x2. Their sum has degree 2
        // (a collision), so a greedy build of degree 4 must stop at degree 2 —
        // adding the second packet would not increase the degree.
        let k = 8;
        let m = 2;
        let nat = natives(k, m);
        let mut node = LtncNode::new(k, m);
        node.receive(&packet(k, &[0, 1], &nat));
        node.receive(&packet(k, &[1, 2], &nat));
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..20 {
            let p = node.build_packet(4, &mut rng);
            assert_eq!(p.degree(), 2, "collision must be avoided");
            assert_consistent(&p, &nat);
        }
    }

    #[test]
    fn empty_node_builds_zero_packet() {
        let mut node = LtncNode::new(8, 2);
        let mut rng = SmallRng::seed_from_u64(1);
        let p = node.build_packet(3, &mut rng);
        assert!(p.is_zero());
    }

    #[test]
    fn build_counts_candidate_examinations() {
        let k = 8;
        let m = 2;
        let nat = natives(k, m);
        let mut node = LtncNode::with_all_natives(k, m, &nat, LtncConfig::default());
        let before = node.recoding_counters().get(OpKind::BuildCandidate);
        let mut rng = SmallRng::seed_from_u64(2);
        node.build_packet(3, &mut rng);
        assert!(node.recoding_counters().get(OpKind::BuildCandidate) > before);
    }
}
