use ltnc_gf2::CodeVector;
use ltnc_metrics::Summary;

/// Per-native occurrence counts in the packets previously *sent* by this node
/// (third row of Table I: "determine substitutions of native packets that
/// decrease the variance of degrees").
///
/// LT decoding performs best when all native packets appear in roughly the
/// same number of encoded packets (a near-Dirac degree distribution on the
/// native side). The refinement step (Algorithm 2) consults this tracker to
/// replace over-represented natives with under-represented ones; the tracker
/// is updated every time a fresh encoded packet leaves the node.
#[derive(Debug, Clone)]
pub struct OccurrenceTracker {
    counts: Vec<u64>,
    packets_sent: u64,
}

impl OccurrenceTracker {
    /// Creates a tracker over `k` natives with all counts at zero.
    #[must_use]
    pub fn new(k: usize) -> Self {
        OccurrenceTracker { counts: vec![0; k], packets_sent: 0 }
    }

    /// Code length `k`.
    #[must_use]
    pub fn code_length(&self) -> usize {
        self.counts.len()
    }

    /// Number of packets recorded so far.
    #[must_use]
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }

    /// Number of previously sent packets in which native `x` appeared.
    ///
    /// # Panics
    ///
    /// Panics if `x >= k`.
    #[must_use]
    pub fn frequency(&self, x: usize) -> u64 {
        self.counts[x]
    }

    /// Returns `true` when `candidate` appeared strictly less often than `reference`.
    #[must_use]
    pub fn is_less_frequent(&self, candidate: usize, reference: usize) -> bool {
        self.counts[candidate] < self.counts[reference]
    }

    /// Records that a fresh encoded packet with the given code vector was sent.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from `k`.
    pub fn record_sent(&mut self, vector: &CodeVector) {
        assert_eq!(vector.len(), self.counts.len(), "code length mismatch");
        for x in vector.iter_ones() {
            self.counts[x] += 1;
        }
        self.packets_sent += 1;
    }

    /// Among `candidates`, the one with the lowest occurrence count that is
    /// strictly less frequent than `reference` and satisfies `allowed`.
    /// Ties are broken by the smallest index. Returns `None` when no candidate
    /// qualifies — the refinement step then leaves `reference` in place.
    #[must_use]
    pub fn best_substitute<F>(
        &self,
        reference: usize,
        candidates: &[usize],
        allowed: F,
    ) -> Option<usize>
    where
        F: Fn(usize) -> bool,
    {
        candidates
            .iter()
            .copied()
            .filter(|&c| c != reference && self.is_less_frequent(c, reference) && allowed(c))
            .min_by_key(|&c| (self.counts[c], c))
    }

    /// Summary statistics of the per-native occurrence counts. The paper
    /// reports the relative standard deviation of this distribution (≈ 0.1 %
    /// with refinement enabled).
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary::from_iter(self.counts.iter().map(|&c| c as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let t = OccurrenceTracker::new(4);
        assert_eq!(t.code_length(), 4);
        assert_eq!(t.packets_sent(), 0);
        for x in 0..4 {
            assert_eq!(t.frequency(x), 0);
        }
        assert_eq!(t.summary().mean(), 0.0);
    }

    #[test]
    fn record_sent_increments_member_counts() {
        let mut t = OccurrenceTracker::new(5);
        t.record_sent(&CodeVector::from_indices(5, &[0, 2]));
        t.record_sent(&CodeVector::from_indices(5, &[2, 4]));
        assert_eq!(t.frequency(0), 1);
        assert_eq!(t.frequency(2), 2);
        assert_eq!(t.frequency(4), 1);
        assert_eq!(t.frequency(1), 0);
        assert_eq!(t.packets_sent(), 2);
    }

    #[test]
    #[should_panic(expected = "code length mismatch")]
    fn record_sent_rejects_wrong_length() {
        let mut t = OccurrenceTracker::new(5);
        t.record_sent(&CodeVector::zero(6));
    }

    #[test]
    fn is_less_frequent_is_strict() {
        let mut t = OccurrenceTracker::new(3);
        t.record_sent(&CodeVector::from_indices(3, &[0]));
        assert!(t.is_less_frequent(1, 0));
        assert!(!t.is_less_frequent(0, 1));
        assert!(!t.is_less_frequent(1, 2)); // equal counts
    }

    #[test]
    fn best_substitute_picks_least_frequent_allowed() {
        let mut t = OccurrenceTracker::new(5);
        // frequencies: x0=3, x1=1, x2=2, x3=0, x4=0
        for _ in 0..3 {
            t.record_sent(&CodeVector::from_indices(5, &[0]));
        }
        t.record_sent(&CodeVector::from_indices(5, &[1, 2]));
        t.record_sent(&CodeVector::from_indices(5, &[2]));

        let candidates = [1, 2, 3, 4];
        // Least frequent overall, ties broken by index: x3.
        assert_eq!(t.best_substitute(0, &candidates, |_| true), Some(3));
        // Disallowing x3 falls back to x4, then x1.
        assert_eq!(t.best_substitute(0, &candidates, |c| c != 3), Some(4));
        assert_eq!(t.best_substitute(0, &candidates, |c| c != 3 && c != 4), Some(1));
        // Reference with count 0 cannot be improved.
        assert_eq!(t.best_substitute(3, &candidates, |_| true), None);
        // The reference itself is never returned.
        assert_eq!(t.best_substitute(0, &[0], |_| true), None);
    }

    #[test]
    fn summary_reflects_spread() {
        let mut t = OccurrenceTracker::new(4);
        for _ in 0..4 {
            t.record_sent(&CodeVector::from_indices(4, &[0, 1, 2, 3]));
        }
        let s = t.summary();
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.relative_std_dev(), 0.0);

        t.record_sent(&CodeVector::from_indices(4, &[0]));
        assert!(t.summary().relative_std_dev() > 0.0);
    }
}
