use ltnc_metrics::Summary;
use serde::{Deserialize, Serialize};

/// Running statistics about the recoding pipeline of a node.
///
/// These are the in-text numbers the paper reports in §III-B and §III-C:
///
/// * first picked degree accepted ≈ 99.9 % of the time, ≈ 1.02 draws on
///   average when a retry happens ([`RecodeStats::first_pick_accept_rate`],
///   [`RecodeStats::average_draws`]);
/// * the build step reaches the target degree ≈ 95 % of the time with an
///   average relative deviation of ≈ 0.2 % ([`RecodeStats::target_reached_rate`],
///   [`RecodeStats::average_relative_deviation`]);
/// * the redundancy detection drops ≈ 31 % of the redundant packets that
///   would otherwise be inserted ([`RecodeStats::redundant_rejected`]).
///
/// The `stats_recoding` binary of `ltnc-bench` prints them next to the
/// paper's values.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RecodeStats {
    /// Number of fresh packets recoded.
    pub recoded_packets: u64,
    /// Number of degree draws performed (≥ `recoded_packets`).
    pub degree_draws: u64,
    /// Number of recodings whose first drawn degree was accepted.
    pub first_pick_accepted: u64,
    /// Number of recodings for which the build step reached the target degree exactly.
    pub target_reached: u64,
    /// Sum over recodings of `(target − achieved) / target`.
    pub relative_deviation_sum: f64,
    /// Packets rejected on reception by the redundancy detection (Algorithm 3).
    pub redundant_rejected: u64,
    /// Packets accepted on reception.
    pub accepted: u64,
    /// Packets that turned out to be redundant but were *not* caught by
    /// Algorithm 3 (they reduced to nothing inside the decoder).
    pub redundant_missed: u64,
}

impl RecodeStats {
    /// Creates zeroed statistics.
    #[must_use]
    pub fn new() -> Self {
        RecodeStats::default()
    }

    /// Fraction of recodings whose first degree draw was accepted
    /// (paper: ≈ 0.999).
    #[must_use]
    pub fn first_pick_accept_rate(&self) -> f64 {
        ratio(self.first_pick_accepted, self.recoded_packets)
    }

    /// Average number of degree draws per recoding (paper: ≈ 1.02 counting
    /// only recodings that needed a retry; over all recodings the value is
    /// barely above 1).
    #[must_use]
    pub fn average_draws(&self) -> f64 {
        if self.recoded_packets == 0 {
            0.0
        } else {
            self.degree_draws as f64 / self.recoded_packets as f64
        }
    }

    /// Fraction of recodings for which the greedy build reached the target
    /// degree exactly (paper: ≈ 0.95).
    #[must_use]
    pub fn target_reached_rate(&self) -> f64 {
        ratio(self.target_reached, self.recoded_packets)
    }

    /// Average relative deviation `(target − achieved) / target`
    /// (paper: ≈ 0.002).
    #[must_use]
    pub fn average_relative_deviation(&self) -> f64 {
        if self.recoded_packets == 0 {
            0.0
        } else {
            self.relative_deviation_sum / self.recoded_packets as f64
        }
    }

    /// Fraction of incoming redundant packets caught by Algorithm 3 before
    /// insertion (the paper reports that the mechanism removes ≈ 31 % of the
    /// redundant insertions).
    #[must_use]
    pub fn redundancy_catch_rate(&self) -> f64 {
        ratio(self.redundant_rejected, self.redundant_rejected + self.redundant_missed)
    }

    /// Merges the statistics of another node (for network-wide aggregates).
    pub fn merge(&mut self, other: &RecodeStats) {
        self.recoded_packets += other.recoded_packets;
        self.degree_draws += other.degree_draws;
        self.first_pick_accepted += other.first_pick_accepted;
        self.target_reached += other.target_reached;
        self.relative_deviation_sum += other.relative_deviation_sum;
        self.redundant_rejected += other.redundant_rejected;
        self.accepted += other.accepted;
        self.redundant_missed += other.redundant_missed;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A snapshot of the degree spread of native packets in previously sent
/// packets, paired with [`RecodeStats`] in the evaluation harness.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OccurrenceSpread {
    /// Mean occurrences per native packet.
    pub mean: f64,
    /// Relative standard deviation (paper: ≈ 0.001 with refinement).
    pub relative_std_dev: f64,
}

impl OccurrenceSpread {
    /// Builds the snapshot from a summary of per-native occurrence counts.
    #[must_use]
    pub fn from_summary(summary: &Summary) -> Self {
        OccurrenceSpread { mean: summary.mean(), relative_std_dev: summary.relative_std_dev() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = RecodeStats::new();
        assert_eq!(s.first_pick_accept_rate(), 0.0);
        assert_eq!(s.average_draws(), 0.0);
        assert_eq!(s.target_reached_rate(), 0.0);
        assert_eq!(s.average_relative_deviation(), 0.0);
        assert_eq!(s.redundancy_catch_rate(), 0.0);
    }

    #[test]
    fn rates_compute_as_expected() {
        let s = RecodeStats {
            recoded_packets: 100,
            degree_draws: 102,
            first_pick_accepted: 99,
            target_reached: 95,
            relative_deviation_sum: 0.2,
            redundant_rejected: 31,
            accepted: 300,
            redundant_missed: 69,
        };
        assert!((s.first_pick_accept_rate() - 0.99).abs() < 1e-12);
        assert!((s.average_draws() - 1.02).abs() < 1e-12);
        assert!((s.target_reached_rate() - 0.95).abs() < 1e-12);
        assert!((s.average_relative_deviation() - 0.002).abs() < 1e-12);
        assert!((s.redundancy_catch_rate() - 0.31).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = RecodeStats {
            recoded_packets: 1,
            degree_draws: 2,
            first_pick_accepted: 1,
            target_reached: 1,
            relative_deviation_sum: 0.5,
            redundant_rejected: 1,
            accepted: 2,
            redundant_missed: 0,
        };
        a.merge(&a.clone());
        assert_eq!(a.recoded_packets, 2);
        assert_eq!(a.degree_draws, 4);
        assert_eq!(a.relative_deviation_sum, 1.0);
    }

    #[test]
    fn occurrence_spread_from_summary() {
        let s = Summary::from_iter([2.0, 2.0, 2.0, 2.0]);
        let spread = OccurrenceSpread::from_summary(&s);
        assert_eq!(spread.mean, 2.0);
        assert_eq!(spread.relative_std_dev, 0.0);
    }
}
