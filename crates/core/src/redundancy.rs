use ltnc_gf2::CodeVector;

use crate::LtncNode;

impl LtncNode {
    /// Algorithm 3 of the paper: decides, from the code vector alone, whether
    /// an encoded packet of degree ≤ 3 could be generated from the packets
    /// this node already holds (and is therefore non-innovative).
    ///
    /// * degree 0 — trivially redundant;
    /// * degree 1 — redundant when the native is already decoded;
    /// * degree 2 — redundant when the two natives are in the same connected
    ///   component (the packet can be produced from degree ≤ 2 packets);
    /// * degree 3 — redundant when it splits into a redundant degree-1 part
    ///   and a redundant degree-2 part (three possible splits), or when an
    ///   identical degree-3 packet is already buffered;
    /// * degree ≥ 4 — never reported redundant (the check is intentionally
    ///   limited to low degrees, which are both the common case under the
    ///   Robust Soliton distribution and the cheap one).
    ///
    /// The check is `O(1)` for degrees ≤ 2 and `O(log k)`-ish for degree 3
    /// (a hash lookup of the sorted triple), exactly the budget the paper
    /// allows. It never gives false positives: a packet reported redundant is
    /// genuinely generatable from the node's current holdings.
    #[must_use]
    pub fn is_redundant(&self, vector: &CodeVector) -> bool {
        match vector.degree() {
            0 => true,
            1 => {
                let x = vector.first_one().expect("degree 1");
                self.decoder.is_decoded(x)
            }
            2 => {
                let ones = vector.ones();
                self.cc.same_component(ones[0], ones[1])
            }
            3 => {
                let ones = vector.ones();
                let (a, b, c) = (ones[0], ones[1], ones[2]);
                let decoded = |x: usize| self.decoder.is_decoded(x);
                let pair_ok = |x: usize, y: usize| self.cc.same_component(x, y);
                (decoded(a) && pair_ok(b, c))
                    || (decoded(b) && pair_ok(a, c))
                    || (decoded(c) && pair_ok(a, b))
                    || self.degree3_counts.contains_key(&[a, b, c])
            }
            _ => false,
        }
    }

    /// Convenience wrapper taking a full packet (the simulator's feedback
    /// channel runs the check on the header before the payload is sent).
    #[must_use]
    pub fn is_redundant_packet(&self, packet: &ltnc_gf2::EncodedPacket) -> bool {
        self.is_redundant(packet.vector())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltnc_gf2::{EncodedPacket, Payload};

    fn natives(k: usize, m: usize) -> Vec<Payload> {
        (0..k)
            .map(|i| Payload::from_vec((0..m).map(|j| (i * 13 + j + 1) as u8).collect()))
            .collect()
    }

    fn packet(k: usize, indices: &[usize], nat: &[Payload]) -> EncodedPacket {
        let mut payload = Payload::zero(nat[0].len());
        for &i in indices {
            payload.xor_assign(&nat[i]);
        }
        EncodedPacket::new(CodeVector::from_indices(k, indices), payload)
    }

    fn cv(k: usize, indices: &[usize]) -> CodeVector {
        CodeVector::from_indices(k, indices)
    }

    #[test]
    fn zero_vector_is_redundant() {
        let node = LtncNode::new(8, 2);
        assert!(node.is_redundant(&CodeVector::zero(8)));
    }

    #[test]
    fn degree_one_redundant_iff_decoded() {
        let k = 8;
        let nat = natives(k, 2);
        let mut node = LtncNode::new(k, 2);
        assert!(!node.is_redundant(&cv(k, &[3])));
        node.receive(&packet(k, &[3], &nat));
        assert!(node.is_redundant(&cv(k, &[3])));
        assert!(!node.is_redundant(&cv(k, &[4])));
    }

    #[test]
    fn degree_two_redundant_iff_same_component() {
        let k = 8;
        let nat = natives(k, 2);
        let mut node = LtncNode::new(k, 2);
        node.receive(&packet(k, &[0, 1], &nat));
        node.receive(&packet(k, &[1, 2], &nat));
        // x0 ⊕ x2 is generatable from the two held packets.
        assert!(node.is_redundant(&cv(k, &[0, 2])));
        assert!(node.is_redundant(&cv(k, &[0, 1])));
        assert!(!node.is_redundant(&cv(k, &[0, 3])));
        assert!(!node.is_redundant(&cv(k, &[4, 5])));
    }

    #[test]
    fn degree_two_redundant_when_both_decoded() {
        let k = 8;
        let nat = natives(k, 2);
        let mut node = LtncNode::new(k, 2);
        node.receive(&packet(k, &[0], &nat));
        node.receive(&packet(k, &[5], &nat));
        assert!(node.is_redundant(&cv(k, &[0, 5])));
        assert!(!node.is_redundant(&cv(k, &[0, 4])));
    }

    #[test]
    fn degree_three_split_detection() {
        // Paper example (§III-C.1): the node stores y5 = x3⊕x4⊕x5 and can
        // generate x3⊕x5 from other packets; once x4 is decoded, x3⊕x4⊕x5 is
        // redundant because it splits into a decoded native and a generatable pair.
        let k = 8;
        let nat = natives(k, 2);
        let mut node = LtncNode::new(k, 2);
        node.receive(&packet(k, &[2, 4], &nat)); // x3 ⊕ x5 available as degree 2
        node.receive(&packet(k, &[3], &nat)); // x4 decoded
        assert!(node.is_redundant(&cv(k, &[2, 3, 4])));
        // Without the decoded native the split fails.
        assert!(!node.is_redundant(&cv(k, &[2, 4, 5])));
    }

    #[test]
    fn degree_three_identical_packet_detection() {
        let k = 8;
        let nat = natives(k, 2);
        let mut node = LtncNode::new(k, 2);
        node.receive(&packet(k, &[1, 2, 5], &nat));
        assert!(node.is_redundant(&cv(k, &[1, 2, 5])));
        assert!(!node.is_redundant(&cv(k, &[1, 2, 6])));
    }

    #[test]
    fn high_degree_packets_are_never_flagged() {
        let k = 8;
        let nat = natives(k, 2);
        let mut node = LtncNode::new(k, 2);
        for i in 0..k {
            node.receive(&packet(k, &[i], &nat));
        }
        // Even though everything is decoded (any packet is redundant in truth),
        // the cheap check only covers degree ≤ 3.
        assert!(!node.is_redundant(&cv(k, &[0, 1, 2, 3])));
        assert!(node.is_redundant(&cv(k, &[0, 1, 2])));
    }

    #[test]
    fn reception_rejects_detected_redundant_packets() {
        let k = 8;
        let nat = natives(k, 2);
        let mut node = LtncNode::new(k, 2);
        node.receive(&packet(k, &[0, 1], &nat));
        node.receive(&packet(k, &[1, 2], &nat));
        let outcome = node.receive(&packet(k, &[0, 2], &nat));
        assert_eq!(outcome, crate::ReceiveOutcome::RejectedRedundant);
        assert_eq!(node.stats().redundant_rejected, 1);
        assert_eq!(node.buffered_count(), 2);
    }

    #[test]
    fn detection_can_be_disabled() {
        let k = 8;
        let nat = natives(k, 2);
        let mut node = LtncNode::with_config(
            k,
            2,
            crate::LtncConfig::default().without_redundancy_detection(),
        );
        node.receive(&packet(k, &[0, 1], &nat));
        node.receive(&packet(k, &[1, 2], &nat));
        let outcome = node.receive(&packet(k, &[0, 2], &nat));
        // Without detection the packet is buffered even though it is redundant.
        assert_eq!(outcome, crate::ReceiveOutcome::Stored);
        assert_eq!(node.buffered_count(), 3);
    }

    #[test]
    fn consumed_degree3_packets_leave_the_lookup_table() {
        let k = 8;
        let nat = natives(k, 2);
        let mut node = LtncNode::new(k, 2);
        node.receive(&packet(k, &[1, 2, 5], &nat));
        assert!(node.is_redundant(&cv(k, &[1, 2, 5])));
        // Decode x1 and x2: the stored packet reduces to degree 1 and is
        // consumed (decoding x5 on the way); the triple must disappear.
        node.receive(&packet(k, &[1], &nat));
        node.receive(&packet(k, &[2], &nat));
        assert!(node.is_decoded(5));
        assert!(node.degree3_counts.is_empty());
        assert!(node.degree3_by_id.is_empty());
        // The vector is still redundant, but now through the decoded-native rule.
        assert!(node.is_redundant(&cv(k, &[1, 2, 5])));
    }
}
