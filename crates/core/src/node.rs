use std::collections::HashMap;

use ltnc_gf2::{CodeVector, EncodedPacket, Payload};
use ltnc_lt::{BpDecoder, DecodeEvent, InsertOutcome, LtError, PacketId, RobustSoliton};
use ltnc_metrics::{OpCounters, OpKind};
use rand::Rng;

use crate::{
    ComponentTracker, DegreeIndex, LtncConfig, OccurrenceSpread, OccurrenceTracker, RecodeStats,
};

/// What happened to a packet handed to [`LtncNode::receive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiveOutcome {
    /// The redundancy detection (Algorithm 3) rejected the packet before it
    /// was inserted: it could be generated from what the node already holds.
    RejectedRedundant,
    /// The packet was inserted but reduced to the zero combination inside the
    /// decoder — a redundant packet the cheap detection did not catch.
    NonInnovative,
    /// The packet was stored in the Tanner graph (no new native decoded yet).
    Stored,
    /// The packet triggered belief propagation and decoded this many new natives.
    Progress(usize),
}

impl ReceiveOutcome {
    /// Returns `true` when the packet brought information the node kept.
    #[must_use]
    pub fn is_useful(self) -> bool {
        matches!(self, ReceiveOutcome::Stored | ReceiveOutcome::Progress(_))
    }
}

/// A node of the LTNC scheme: it decodes with belief propagation and recodes
/// fresh packets whose statistics preserve the LT structure.
///
/// The node owns the four structures the paper describes (Tanner graph inside
/// the [`BpDecoder`], plus the three complementary structures of Table I:
/// [`DegreeIndex`], [`ComponentTracker`], [`OccurrenceTracker`]) and exposes
/// the two operations the dissemination protocol needs:
///
/// * [`LtncNode::receive`] — reception path: redundancy detection
///   (Algorithm 3), belief propagation, maintenance of the auxiliary
///   structures;
/// * [`LtncNode::recode`] — emission path: degree picking (§III-B.1), greedy
///   build (Algorithm 1) and refinement (Algorithm 2).
///
/// Costs are recorded in two separate [`OpCounters`] ledgers so that the
/// evaluation can report recoding and decoding costs independently
/// (Figure 8 of the paper).
#[derive(Debug, Clone)]
pub struct LtncNode {
    pub(crate) k: usize,
    pub(crate) payload_size: usize,
    pub(crate) config: LtncConfig,
    pub(crate) soliton: RobustSoliton,
    pub(crate) decoder: BpDecoder,
    pub(crate) degree_index: DegreeIndex,
    pub(crate) cc: ComponentTracker,
    pub(crate) occurrences: OccurrenceTracker,
    /// Multiset of the (sorted) native triples of buffered degree-3 packets,
    /// for the `isAvailable` lookup of Algorithm 3.
    pub(crate) degree3_counts: HashMap<[usize; 3], u32>,
    /// Which triple a buffered packet currently at degree 3 contributes.
    pub(crate) degree3_by_id: HashMap<PacketId, [usize; 3]>,
    pub(crate) recode_counters: OpCounters,
    pub(crate) decode_counters: OpCounters,
    pub(crate) stats: RecodeStats,
    /// Snapshot of the decoder's cumulative data/edge counters, used to charge
    /// per-reception deltas to `decode_counters`.
    last_decoder_payload_ops: u64,
    last_decoder_edge_ops: u64,
}

impl LtncNode {
    /// Creates a node for `k` native packets of `payload_size` bytes using the
    /// paper's default configuration.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize, payload_size: usize) -> Self {
        Self::with_config(k, payload_size, LtncConfig::default())
    }

    /// Creates a node with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or the Soliton parameters in the configuration are invalid.
    #[must_use]
    pub fn with_config(k: usize, payload_size: usize, config: LtncConfig) -> Self {
        let soliton = RobustSoliton::new(k, config.soliton_c, config.soliton_delta)
            .expect("configuration must describe a valid Robust Soliton distribution");
        LtncNode {
            k,
            payload_size,
            config,
            soliton,
            decoder: BpDecoder::new(k, payload_size),
            degree_index: DegreeIndex::new(),
            cc: ComponentTracker::new(k),
            occurrences: OccurrenceTracker::new(k),
            degree3_counts: HashMap::new(),
            degree3_by_id: HashMap::new(),
            recode_counters: OpCounters::new(),
            decode_counters: OpCounters::new(),
            stats: RecodeStats::new(),
            last_decoder_payload_ops: 0,
            last_decoder_edge_ops: 0,
        }
    }

    /// A node that already holds every native packet (used for the source of a
    /// dissemination, and convenient in tests). Equivalent to receiving the
    /// `k` degree-1 packets.
    ///
    /// # Panics
    ///
    /// Panics if the number of payloads differs from `k` or their sizes differ
    /// from `payload_size`.
    #[must_use]
    pub fn with_all_natives(
        k: usize,
        payload_size: usize,
        natives: &[Payload],
        config: LtncConfig,
    ) -> Self {
        assert_eq!(natives.len(), k, "expected {k} native payloads");
        let mut node = Self::with_config(k, payload_size, config);
        for (i, payload) in natives.iter().enumerate() {
            assert_eq!(payload.len(), payload_size, "native {i} has the wrong size");
            node.receive(&EncodedPacket::native(k, i, payload.clone()));
        }
        node
    }

    /// Code length `k`.
    #[must_use]
    pub fn code_length(&self) -> usize {
        self.k
    }

    /// Payload size `m` in bytes.
    #[must_use]
    pub fn payload_size(&self) -> usize {
        self.payload_size
    }

    /// The configuration this node runs with.
    #[must_use]
    pub fn config(&self) -> &LtncConfig {
        &self.config
    }

    /// Number of native packets decoded so far.
    #[must_use]
    pub fn decoded_count(&self) -> usize {
        self.decoder.decoded_count()
    }

    /// Returns `true` once every native packet has been decoded.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.decoder.is_complete()
    }

    /// Returns `true` when native packet `index` has been decoded.
    #[must_use]
    pub fn is_decoded(&self, index: usize) -> bool {
        self.decoder.is_decoded(index)
    }

    /// The decoded payload of native `index`, if available.
    #[must_use]
    pub fn native(&self, index: usize) -> Option<&Payload> {
        self.decoder.native(index)
    }

    /// All decoded payloads in native order.
    ///
    /// # Errors
    ///
    /// Returns [`LtError::NotDecoded`] when decoding is not complete.
    pub fn decode(&self) -> Result<Vec<Payload>, LtError> {
        self.decoder.clone().into_natives()
    }

    /// Number of encoded packets currently buffered in the Tanner graph.
    #[must_use]
    pub fn buffered_count(&self) -> usize {
        self.decoder.graph().len()
    }

    /// Number of packets received, useful or not.
    #[must_use]
    pub fn received_count(&self) -> u64 {
        self.decoder.received_count() + self.stats.redundant_rejected
    }

    /// Returns `true` when the node holds something it can recode from
    /// (at least one decoded native or one buffered packet).
    #[must_use]
    pub fn can_recode(&self) -> bool {
        self.decoder.decoded_count() > 0 || !self.degree_index.is_empty()
    }

    /// Cost ledger of the reception/decoding path.
    #[must_use]
    pub fn decoding_counters(&self) -> &OpCounters {
        &self.decode_counters
    }

    /// Cost ledger of the recoding path.
    #[must_use]
    pub fn recoding_counters(&self) -> &OpCounters {
        &self.recode_counters
    }

    /// Statistics of the recoding pipeline (degree draws, build accuracy,
    /// redundancy catches) — the in-text numbers of §III-B/§III-C.
    #[must_use]
    pub fn stats(&self) -> &RecodeStats {
        &self.stats
    }

    /// Spread of the per-native occurrence counts in the packets this node has
    /// sent (the refinement step keeps the relative standard deviation tiny).
    #[must_use]
    pub fn occurrence_spread(&self) -> OccurrenceSpread {
        OccurrenceSpread::from_summary(&self.occurrences.summary())
    }

    /// The component labels of this node (`cc` in the paper) — what a receiver
    /// transmits to a sender over the feedback channel for Algorithm 4.
    #[must_use]
    pub fn component_labels(&self) -> Vec<usize> {
        self.cc.labels()
    }

    /// Receives an encoded packet.
    ///
    /// Runs the redundancy detection of Algorithm 3 (when enabled and the
    /// degree is ≤ 3), then belief propagation, and keeps the auxiliary
    /// structures in sync.
    ///
    /// # Panics
    ///
    /// Panics if the packet's code length or payload size does not match the
    /// node; a dissemination never mixes packet shapes.
    pub fn receive(&mut self, packet: &EncodedPacket) -> ReceiveOutcome {
        assert_eq!(packet.code_length(), self.k, "code length mismatch");
        assert_eq!(packet.payload_size(), self.payload_size, "payload size mismatch");

        if self.config.detect_redundancy && packet.degree() <= 3 {
            self.decode_counters.incr(OpKind::RedundancyCheck);
            if self.is_redundant(packet.vector()) {
                self.stats.redundant_rejected += 1;
                return ReceiveOutcome::RejectedRedundant;
            }
        }

        let report = self.decoder.insert(packet.clone()).expect("packet shape was checked above");
        self.charge_decoder_deltas();
        self.apply_events(&report.events);
        self.stats.accepted += 1;

        match report.outcome {
            InsertOutcome::Redundant => {
                self.stats.redundant_missed += 1;
                ReceiveOutcome::NonInnovative
            }
            InsertOutcome::Buffered(_) => ReceiveOutcome::Stored,
            InsertOutcome::Progress => ReceiveOutcome::Progress(report.newly_decoded.len()),
        }
    }

    /// Generates a fresh encoded packet preserving the LT statistics:
    /// picks a Robust Soliton degree, builds a packet of that degree from the
    /// available encoded/decoded packets (Algorithm 1) and refines it to
    /// balance native-packet occurrences (Algorithm 2).
    ///
    /// Returns `None` when the node holds nothing to recode from.
    pub fn recode<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<EncodedPacket> {
        if !self.can_recode() {
            return None;
        }
        let target = self.pick_degree(rng);
        let built = self.build_packet(target, rng);
        if built.is_zero() {
            return None;
        }
        let achieved = built.degree();
        self.stats.recoded_packets += 1;
        if achieved == target {
            self.stats.target_reached += 1;
        }
        self.stats.relative_deviation_sum += (target - achieved) as f64 / target as f64;

        let refined = if self.config.refine { self.refine_packet(built) } else { built };
        self.occurrences.record_sent(refined.vector());
        self.recode_counters.incr(OpKind::IndexUpdate);
        Some(refined)
    }

    /// Charges the decoder's newly accumulated payload/edge work to the
    /// decoding ledger.
    fn charge_decoder_deltas(&mut self) {
        let payload_ops = self.decoder.payload_xor_ops();
        let edge_ops = self.decoder.edge_updates();
        self.decode_counters.add(OpKind::PayloadXor, payload_ops - self.last_decoder_payload_ops);
        self.decode_counters.add(OpKind::TannerEdgeUpdate, edge_ops - self.last_decoder_edge_ops);
        self.last_decoder_payload_ops = payload_ops;
        self.last_decoder_edge_ops = edge_ops;
    }

    /// Keeps the degree index, connected components and degree-3 lookup table
    /// in sync with the decoder.
    fn apply_events(&mut self, events: &[DecodeEvent]) {
        for event in events {
            match *event {
                DecodeEvent::NativeDecoded { index } => {
                    self.cc.mark_decoded(index);
                    self.decode_counters.incr(OpKind::IndexUpdate);
                }
                DecodeEvent::PacketBuffered { id, degree } => {
                    self.degree_index.insert(id, degree);
                    self.decode_counters.incr(OpKind::IndexUpdate);
                    self.track_low_degree(id, degree);
                }
                DecodeEvent::PacketReduced { id, new_degree } => {
                    self.untrack_low_degree(id);
                    self.degree_index.update(id, new_degree);
                    self.decode_counters.incr(OpKind::IndexUpdate);
                    self.track_low_degree(id, new_degree);
                }
                DecodeEvent::PacketConsumed { id } => {
                    self.untrack_low_degree(id);
                    self.degree_index.remove(id);
                    self.decode_counters.incr(OpKind::IndexUpdate);
                }
            }
        }
    }

    /// Registers a packet that is (now) of degree 2 or 3 in the corresponding
    /// auxiliary structure.
    ///
    /// Events are applied after the decoder has finished its ripple, so a
    /// packet reported at degree `d` by an intermediate event may since have
    /// been reduced further or consumed. Only the final state matters for the
    /// auxiliary structures (a packet that kept ripping down ends with its
    /// natives decoded anyway), so the tracking is keyed on the packet's
    /// *current* vector and skipped when it no longer matches `degree`.
    fn track_low_degree(&mut self, id: PacketId, degree: usize) {
        if degree != 2 && degree != 3 {
            return;
        }
        let Some((vector, _)) = self.decoder.graph().packet(id) else {
            return;
        };
        let ones = vector.ones();
        if ones.len() != degree {
            return;
        }
        match degree {
            2 => {
                self.cc.merge(ones[0], ones[1], id);
                self.decode_counters.incr(OpKind::IndexUpdate);
            }
            3 => {
                let triple = [ones[0], ones[1], ones[2]];
                *self.degree3_counts.entry(triple).or_insert(0) += 1;
                self.degree3_by_id.insert(id, triple);
                self.decode_counters.incr(OpKind::IndexUpdate);
            }
            _ => unreachable!(),
        }
    }

    /// Removes a packet from the degree-3 lookup table if it was registered there.
    fn untrack_low_degree(&mut self, id: PacketId) {
        if let Some(triple) = self.degree3_by_id.remove(&id) {
            if let Some(count) = self.degree3_counts.get_mut(&triple) {
                *count -= 1;
                if *count == 0 {
                    self.degree3_counts.remove(&triple);
                }
            }
        }
    }

    /// Builds the degree-2 packet `x ⊕ y` from what the node holds: directly
    /// from the two decoded payloads when both are decoded, otherwise by
    /// XOR-ing buffered degree-2 packets along a path between `x` and `y`.
    ///
    /// Returns `None` when the pair cannot be generated (the two natives are
    /// not in the same connected component).
    pub(crate) fn pair_packet(&mut self, x: usize, y: usize) -> Option<EncodedPacket> {
        debug_assert_ne!(x, y);
        let vector = CodeVector::from_indices(self.k, &[x, y]);
        if self.decoder.is_decoded(x) && self.decoder.is_decoded(y) {
            let mut payload = self.decoder.native(x).expect("decoded").clone();
            payload.xor_assign(self.decoder.native(y).expect("decoded"));
            self.recode_counters.incr(OpKind::PayloadXor);
            self.recode_counters.incr(OpKind::VectorXor);
            return Some(EncodedPacket::new(vector, payload));
        }
        let graph = self.decoder.graph();
        let path = self.cc.path_between(x, y, |id| graph.packet(id).is_some())?;
        if path.is_empty() {
            return None;
        }
        let mut payload = Payload::zero(self.payload_size);
        let mut check = CodeVector::zero(self.k);
        for id in &path {
            let (v, p) = graph.packet(*id).expect("path edges are alive");
            payload.xor_assign(p);
            check.xor_assign(v);
            self.recode_counters.incr(OpKind::PayloadXor);
            self.recode_counters.incr(OpKind::VectorXor);
        }
        debug_assert_eq!(check, vector, "degree-2 path must telescope to x ⊕ y");
        Some(EncodedPacket::new(vector, payload))
    }
}
