use ltnc_lt::DegreeDistribution;
use ltnc_metrics::OpKind;
use rand::Rng;

use crate::LtncNode;

impl LtncNode {
    /// Picks a target degree for a fresh encoded packet (§III-B.1).
    ///
    /// Degrees are drawn from the Robust Soliton distribution; a drawn degree
    /// is rejected when either of the two reachability heuristics of the paper
    /// says it cannot be built from the packets available:
    ///
    /// 1. the total degree mass of available packets of degree ≤ d (decoded
    ///    natives count 1 each) is smaller than `d`;
    /// 2. fewer than `d` distinct natives are decoded or appear in a buffered
    ///    packet of degree ≤ d.
    ///
    /// After [`crate::LtncConfig::max_degree_retries`] rejected draws the node
    /// falls back to the largest reachable degree (the paper reports that the
    /// first draw is accepted 99.9 % of the time, so the fallback is
    /// essentially never exercised).
    pub(crate) fn pick_degree<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        let coverage = self.coverage_by_degree();
        let decoded = self.decoder.decoded_count();

        let reachable = |d: usize| -> bool {
            if d == 0 {
                return false;
            }
            let mass = decoded + self.degree_index.degree_mass_up_to(d);
            if mass < d {
                return false;
            }
            let cap = d.min(coverage.len() - 1);
            coverage[cap] >= d
        };

        let mut draws = 0;
        while draws < self.config.max_degree_retries {
            draws += 1;
            self.recode_counters.incr(OpKind::DegreeDraw);
            let d = self.soliton.sample(rng);
            if reachable(d) {
                self.stats.degree_draws += draws as u64;
                if draws == 1 {
                    self.stats.first_pick_accepted += 1;
                }
                return d;
            }
        }
        self.stats.degree_draws += draws as u64;

        // Fallback: the largest degree both heuristics accept. At least one
        // degree is reachable because `can_recode()` held when recoding started.
        let max_candidate = coverage.last().copied().unwrap_or(0).max(1);
        (1..=max_candidate).rev().find(|&d| reachable(d)).unwrap_or(1)
    }

    /// `coverage[d]` = number of natives that are decoded or appear in at
    /// least one buffered packet of degree ≤ d. Computed in one pass over the
    /// degree index (which iterates lowest degree first).
    fn coverage_by_degree(&self) -> Vec<usize> {
        let max_degree = self.degree_index.max_degree().unwrap_or(0);
        let mut covered = vec![false; self.k];
        let mut count = 0usize;
        for (x, slot) in covered.iter_mut().enumerate() {
            if self.decoder.is_decoded(x) {
                *slot = true;
                count += 1;
            }
        }
        let mut coverage = vec![0usize; max_degree + 1];
        let mut current_degree = 0usize;
        for (degree, id) in self.degree_index.iter() {
            while current_degree < degree {
                coverage[current_degree] = count;
                current_degree += 1;
            }
            if let Some((vector, _)) = self.decoder.graph().packet(id) {
                for x in vector.iter_ones() {
                    if !covered[x] {
                        covered[x] = true;
                        count += 1;
                    }
                }
            }
        }
        while current_degree <= max_degree {
            coverage[current_degree] = count;
            current_degree += 1;
        }
        coverage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltnc_gf2::{CodeVector, EncodedPacket, Payload};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn natives(k: usize, m: usize) -> Vec<Payload> {
        (0..k).map(|i| Payload::from_vec((0..m).map(|j| (i * 3 + j + 1) as u8).collect())).collect()
    }

    fn packet(k: usize, indices: &[usize], nat: &[Payload]) -> EncodedPacket {
        let mut payload = Payload::zero(nat[0].len());
        for &i in indices {
            payload.xor_assign(&nat[i]);
        }
        EncodedPacket::new(CodeVector::from_indices(k, indices), payload)
    }

    #[test]
    fn coverage_counts_decoded_and_buffered_natives() {
        let k = 8;
        let nat = natives(k, 2);
        let mut node = LtncNode::new(k, 2);
        node.receive(&packet(k, &[0], &nat));
        node.receive(&packet(k, &[1, 2, 3], &nat));
        node.receive(&packet(k, &[3, 4], &nat));
        let coverage = node.coverage_by_degree();
        // Degrees present: 2 and 3 → coverage has entries 0..=3.
        assert_eq!(coverage.len(), 4);
        // Degree 0/1: only the decoded native x0.
        assert_eq!(coverage[0], 1);
        assert_eq!(coverage[1], 1);
        // Degree ≤ 2: x0 plus {x3, x4}.
        assert_eq!(coverage[2], 3);
        // Degree ≤ 3: adds {x1, x2} (x3 already counted).
        assert_eq!(coverage[3], 5);
    }

    #[test]
    fn picked_degree_never_exceeds_what_is_available() {
        // Paper example: {x1⊕x2⊕x3, x1⊕x3, x2⊕x5} — degree 5 is unreachable
        // because only 4 distinct natives are covered.
        let k = 8;
        let nat = natives(k, 2);
        let mut node = LtncNode::new(k, 2);
        node.receive(&packet(k, &[0, 1, 2], &nat));
        node.receive(&packet(k, &[0, 2], &nat));
        node.receive(&packet(k, &[1, 4], &nat));
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..200 {
            let d = node.pick_degree(&mut rng);
            assert!((1..=4).contains(&d), "picked unreachable degree {d}");
        }
    }

    #[test]
    fn single_decoded_native_only_allows_degree_one() {
        let k = 16;
        let nat = natives(k, 2);
        let mut node = LtncNode::new(k, 2);
        node.receive(&packet(k, &[5], &nat));
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            assert_eq!(node.pick_degree(&mut rng), 1);
        }
    }

    #[test]
    fn stats_track_draws_and_first_pick_acceptance() {
        let k = 32;
        let m = 2;
        let nat = natives(k, m);
        // A node with everything decoded accepts any degree immediately.
        let mut node = LtncNode::with_all_natives(k, m, &nat, crate::LtncConfig::default());
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            node.pick_degree(&mut rng);
        }
        assert_eq!(node.stats().first_pick_accepted, 100);
        assert_eq!(node.stats().degree_draws, 100);
    }
}
