use serde::{Deserialize, Serialize};

/// Tuning knobs of an LTNC node.
///
/// The defaults reproduce the configuration evaluated in the paper; the
/// booleans exist for the ablation benches (`DESIGN.md` §5): they let the
/// harness measure what each mechanism contributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LtncConfig {
    /// Robust Soliton parameter `c` (paper/Luby default: 0.1).
    pub soliton_c: f64,
    /// Robust Soliton parameter `δ` (paper/Luby default: 0.5).
    pub soliton_delta: f64,
    /// Run the refinement step (Algorithm 2) after building a packet.
    /// Disabling it lets the native-packet degree variance drift, which
    /// degrades belief propagation — the ablation quantifies by how much.
    pub refine: bool,
    /// Run the redundancy detection (Algorithm 3) on packets of degree ≤ 3
    /// before inserting them, as described in §III-C.1.
    pub detect_redundancy: bool,
    /// Maximum number of times a target degree is re-drawn when the
    /// reachability heuristics reject it, before falling back to the largest
    /// reachable degree. The paper reports an average of 1.02 draws, so this
    /// bound is essentially never hit; it only guards pathological states
    /// (e.g. an empty node).
    pub max_degree_retries: usize,
}

impl Default for LtncConfig {
    fn default() -> Self {
        LtncConfig {
            soliton_c: 0.1,
            soliton_delta: 0.5,
            refine: true,
            detect_redundancy: true,
            max_degree_retries: 64,
        }
    }
}

impl LtncConfig {
    /// The paper's configuration (all mechanisms enabled).
    #[must_use]
    pub fn paper() -> Self {
        LtncConfig::default()
    }

    /// Configuration with the refinement step disabled (ablation).
    #[must_use]
    pub fn without_refinement(mut self) -> Self {
        self.refine = false;
        self
    }

    /// Configuration with redundancy detection disabled (ablation).
    #[must_use]
    pub fn without_redundancy_detection(mut self) -> Self {
        self.detect_redundancy = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_everything() {
        let c = LtncConfig::default();
        assert!(c.refine);
        assert!(c.detect_redundancy);
        assert_eq!(c.soliton_c, 0.1);
        assert_eq!(c.soliton_delta, 0.5);
        assert!(c.max_degree_retries > 0);
        assert_eq!(c, LtncConfig::paper());
    }

    #[test]
    fn ablation_builders_flip_flags() {
        let c = LtncConfig::default().without_refinement();
        assert!(!c.refine);
        assert!(c.detect_redundancy);
        let c = LtncConfig::default().without_redundancy_detection();
        assert!(c.refine);
        assert!(!c.detect_redundancy);
    }
}
