//! LT Network Codes (LTNC) — the primary contribution of the paper.
//!
//! LTNC makes LT codes usable as *network codes*: intermediary nodes holding
//! only a partial set of encoded packets can generate fresh encoded packets
//! whose statistics still look like LT codes (Robust Soliton degrees for
//! encoded packets, near-uniform degrees for native packets), so receivers
//! keep decoding with cheap belief propagation instead of Gaussian
//! elimination.
//!
//! The crate provides [`LtncNode`], the per-node state machine, built on the
//! substrates of the workspace:
//!
//! * reception — redundancy detection (Algorithm 3 of the paper), belief
//!   propagation via [`ltnc_lt::BpDecoder`], and maintenance of the three
//!   complementary structures of Table I:
//!   [`DegreeIndex`] (packets grouped by degree), [`ComponentTracker`]
//!   (connected components of natives under degree ≤ 2 packets) and
//!   [`OccurrenceTracker`] (occurrences of natives in previously sent packets);
//! * emission — degree picking with reachability heuristics (§III-B.1), the
//!   greedy build of Algorithm 1 and the refinement of Algorithm 2;
//! * feedback — the "smart" innovative-packet construction of Algorithm 4 for
//!   systems with a feedback channel.
//!
//! # Example
//!
//! ```
//! use ltnc_core::{LtncNode, LtncConfig};
//! use ltnc_gf2::Payload;
//! use rand::SeedableRng;
//! use rand::rngs::SmallRng;
//!
//! let k = 32;
//! let m = 8;
//! let natives: Vec<Payload> = (0..k).map(|i| Payload::from_vec(vec![i as u8; m])).collect();
//! let mut rng = SmallRng::seed_from_u64(42);
//!
//! // The source holds the full content; a downstream node decodes from the
//! // source's recoded packets only, using belief propagation.
//! let mut source = LtncNode::with_all_natives(k, m, &natives, LtncConfig::default());
//! let mut sink = LtncNode::new(k, m);
//! while !sink.is_complete() {
//!     if let Some(packet) = source.recode(&mut rng) {
//!         sink.receive(&packet);
//!     }
//! }
//! assert_eq!(sink.decode().unwrap(), natives);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod components;
mod config;
mod degree_index;
mod feedback;
mod node;
mod occurrences;
mod pick;
mod redundancy;
mod refine;
mod stats;

pub use components::{ComponentTracker, DECODED_CLASS};
pub use config::LtncConfig;
pub use degree_index::DegreeIndex;
pub use node::{LtncNode, ReceiveOutcome};
pub use occurrences::OccurrenceTracker;
pub use stats::{OccurrenceSpread, RecodeStats};

#[cfg(test)]
mod node_tests {
    use super::*;
    use ltnc_gf2::{CodeVector, EncodedPacket, Payload};
    use ltnc_lt::{BpDecoder, DegreeDistribution, LtEncoder, RobustSoliton};
    use ltnc_metrics::Histogram;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn natives(k: usize, m: usize) -> Vec<Payload> {
        (0..k)
            .map(|i| Payload::from_vec((0..m).map(|j| (i * 29 + j * 3 + 1) as u8).collect()))
            .collect()
    }

    fn packet(k: usize, indices: &[usize], nat: &[Payload]) -> EncodedPacket {
        let mut payload = Payload::zero(nat[0].len());
        for &i in indices {
            payload.xor_assign(&nat[i]);
        }
        EncodedPacket::new(CodeVector::from_indices(k, indices), payload)
    }

    fn assert_consistent(p: &EncodedPacket, nat: &[Payload]) {
        let mut expected = Payload::zero(nat[0].len());
        for i in p.vector().iter_ones() {
            expected.xor_assign(&nat[i]);
        }
        assert_eq!(p.payload(), &expected, "payload does not match code vector");
    }

    #[test]
    fn fresh_node_is_empty() {
        let node = LtncNode::new(16, 4);
        assert_eq!(node.code_length(), 16);
        assert_eq!(node.payload_size(), 4);
        assert_eq!(node.decoded_count(), 0);
        assert!(!node.is_complete());
        assert!(!node.can_recode());
        assert_eq!(node.buffered_count(), 0);
        assert!(node.decoding_counters().is_empty());
    }

    #[test]
    fn recode_on_empty_node_returns_none() {
        let mut node = LtncNode::new(16, 4);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(node.recode(&mut rng).is_none());
    }

    #[test]
    fn with_all_natives_is_complete() {
        let k = 8;
        let nat = natives(k, 2);
        let node = LtncNode::with_all_natives(k, 2, &nat, LtncConfig::default());
        assert!(node.is_complete());
        assert_eq!(node.decode().unwrap(), nat);
        for (i, p) in nat.iter().enumerate() {
            assert_eq!(node.native(i), Some(p));
        }
    }

    #[test]
    fn source_to_sink_recoding_decodes_everything() {
        let k = 64;
        let m = 8;
        let nat = natives(k, m);
        let mut source = LtncNode::with_all_natives(k, m, &nat, LtncConfig::default());
        let mut sink = LtncNode::new(k, m);
        let mut rng = SmallRng::seed_from_u64(2024);
        let mut sent = 0;
        while !sink.is_complete() {
            let p = source.recode(&mut rng).expect("source can always recode");
            assert_consistent(&p, &nat);
            sink.receive(&p);
            sent += 1;
            assert!(sent < 30 * k, "sink did not converge after {sent} packets");
        }
        assert_eq!(sink.decode().unwrap(), nat);
    }

    #[test]
    fn multi_hop_recoding_from_partial_knowledge() {
        // source -> relay -> sink: the relay recodes from *encoded* packets
        // only (it never needs to decode first) — the defining capability of
        // LTNC compared to earlier distributed LT constructions.
        let k = 48;
        let m = 4;
        let nat = natives(k, m);
        let mut source = LtncNode::with_all_natives(k, m, &nat, LtncConfig::default());
        let mut relay = LtncNode::new(k, m);
        let mut sink = LtncNode::new(k, m);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut rounds = 0;
        while !sink.is_complete() {
            rounds += 1;
            assert!(rounds < 200 * k, "did not converge");
            if let Some(p) = source.recode(&mut rng) {
                relay.receive(&p);
            }
            if relay.can_recode() {
                if let Some(p) = relay.recode(&mut rng) {
                    assert_consistent(&p, &nat);
                    sink.receive(&p);
                }
            }
        }
        assert_eq!(sink.decode().unwrap(), nat);
        // The relay does not need to be complete for the sink to finish —
        // recoding works from partial, encoded-only knowledge.
        assert!(relay.stats().recoded_packets > 0);
    }

    #[test]
    fn recoded_degrees_follow_a_soliton_like_distribution() {
        // Fresh packets from a full-knowledge node must match the Robust
        // Soliton closely: that is the property that keeps belief propagation
        // efficient downstream.
        let k = 128;
        let m = 1;
        let nat = natives(k, m);
        let mut source = LtncNode::with_all_natives(k, m, &nat, LtncConfig::default());
        let mut rng = SmallRng::seed_from_u64(5);
        let mut hist = Histogram::new();
        let n = 5000;
        for _ in 0..n {
            let p = source.recode(&mut rng).unwrap();
            hist.record(p.degree());
        }
        let soliton = RobustSoliton::for_code_length(k).unwrap();
        // Compare empirical frequencies with the target pmf on low degrees
        // (the mass that matters for belief propagation).
        for d in 1..=4 {
            let expected = soliton.pmf(d);
            let observed = hist.probability(d);
            assert!(
                (observed - expected).abs() < 0.05,
                "degree {d}: expected ≈ {expected:.3}, observed {observed:.3}"
            );
        }
        // Mean degree stays logarithmic.
        assert!(hist.mean() < 3.0 * (k as f64).ln());
    }

    #[test]
    fn ltnc_packets_decode_with_plain_bp_decoder() {
        // Interoperability: packets recoded by LTNC must be decodable by the
        // plain LT belief-propagation decoder (they are ordinary LT-style
        // packets as far as the decoder is concerned).
        let k = 64;
        let m = 4;
        let nat = natives(k, m);
        let mut source = LtncNode::with_all_natives(k, m, &nat, LtncConfig::default());
        let mut decoder = BpDecoder::new(k, m);
        let mut rng = SmallRng::seed_from_u64(77);
        let mut sent = 0;
        while !decoder.is_complete() {
            let p = source.recode(&mut rng).unwrap();
            decoder.insert(p).unwrap();
            sent += 1;
            assert!(sent < 40 * k, "BP decoder did not converge");
        }
        for (i, expected) in nat.iter().enumerate() {
            assert_eq!(decoder.native(i), Some(expected));
        }
    }

    #[test]
    fn decoding_cost_is_much_lower_than_rank_squared() {
        // The headline claim: belief-propagation decoding of LTNC packets does
        // payload work per native close to the mean degree (O(log k)), not O(k).
        let k = 256;
        let m = 1;
        let nat = natives(k, m);
        let mut source = LtncNode::with_all_natives(k, m, &nat, LtncConfig::default());
        let mut sink = LtncNode::new(k, m);
        let mut rng = SmallRng::seed_from_u64(3);
        while !sink.is_complete() {
            let p = source.recode(&mut rng).unwrap();
            sink.receive(&p);
        }
        let payload_ops = sink.decoding_counters().data_ops() as f64;
        let per_native = payload_ops / k as f64;
        assert!(
            per_native < 4.0 * (k as f64).ln(),
            "decode data ops per native too high: {per_native}"
        );
    }

    #[test]
    fn recode_stats_match_paper_ballpark() {
        // §III-B reports: first degree draw accepted ≈ 99.9 %, build reaches
        // the target ≈ 95 % of the time. From a well-provisioned node we
        // should be in the same regime (we assert conservative bounds).
        let k = 128;
        let m = 1;
        let nat = natives(k, m);
        let mut source = LtncNode::with_all_natives(k, m, &nat, LtncConfig::default());
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..2000 {
            source.recode(&mut rng).unwrap();
        }
        let stats = source.stats();
        assert!(stats.first_pick_accept_rate() > 0.99, "{}", stats.first_pick_accept_rate());
        assert!(stats.target_reached_rate() > 0.90, "{}", stats.target_reached_rate());
        assert!(stats.average_relative_deviation() < 0.05);
        assert!(stats.average_draws() < 1.1);
    }

    #[test]
    fn occurrence_spread_stays_small_with_refinement() {
        let k = 64;
        let m = 1;
        let nat = natives(k, m);
        let mut source = LtncNode::with_all_natives(k, m, &nat, LtncConfig::default());
        let mut rng = SmallRng::seed_from_u64(13);
        for _ in 0..2000 {
            source.recode(&mut rng).unwrap();
        }
        let spread = source.occurrence_spread();
        assert!(spread.mean > 0.0);
        assert!(
            spread.relative_std_dev < 0.1,
            "relative std-dev {} too high",
            spread.relative_std_dev
        );
    }

    #[test]
    fn partial_node_recodes_consistent_packets() {
        // A node that has only received encoded packets (nothing decoded yet)
        // can still emit consistent fresh packets.
        let k = 32;
        let m = 2;
        let nat = natives(k, m);
        let dist = RobustSoliton::for_code_length(k).unwrap();
        let mut enc = LtEncoder::new(nat.clone(), dist).unwrap();
        let mut rng = SmallRng::seed_from_u64(21);
        let mut node = LtncNode::new(k, m);
        for _ in 0..k / 2 {
            node.receive(&enc.encode(&mut rng));
        }
        assert!(node.can_recode());
        let mut emitted = 0;
        for _ in 0..100 {
            if let Some(p) = node.recode(&mut rng) {
                assert_consistent(&p, &nat);
                assert!(p.degree() >= 1);
                emitted += 1;
            }
        }
        assert!(emitted > 0);
    }

    #[test]
    fn received_counters_and_stats_are_coherent() {
        let k = 16;
        let m = 2;
        let nat = natives(k, m);
        let mut node = LtncNode::new(k, m);
        node.receive(&packet(k, &[0], &nat));
        node.receive(&packet(k, &[0], &nat)); // rejected by redundancy detection
        node.receive(&packet(k, &[1, 2], &nat));
        assert_eq!(node.received_count(), 3);
        assert_eq!(node.stats().redundant_rejected, 1);
        assert_eq!(node.stats().accepted, 2);
        assert_eq!(node.decoded_count(), 1);
        assert_eq!(node.buffered_count(), 1);
    }

    #[test]
    fn redundancy_detection_reduces_buffered_duplicates() {
        // Feed the same stream to a node with and without Algorithm 3; the
        // detecting node must reject some packets and still decode as much.
        let k = 64;
        let m = 1;
        let nat = natives(k, m);
        let dist = RobustSoliton::for_code_length(k).unwrap();
        let mut enc = LtEncoder::new(nat.clone(), dist).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let stream: Vec<EncodedPacket> = (0..6 * k).map(|_| enc.encode(&mut rng)).collect();

        let mut with = LtncNode::new(k, m);
        let mut without =
            LtncNode::with_config(k, m, LtncConfig::default().without_redundancy_detection());
        for p in &stream {
            with.receive(p);
            without.receive(p);
        }
        assert!(with.stats().redundant_rejected > 0);
        // Both nodes end up decoding the same content.
        assert_eq!(with.is_complete(), without.is_complete());
        assert_eq!(with.decoded_count(), without.decoded_count());
    }

    #[test]
    #[should_panic(expected = "code length mismatch")]
    fn receive_rejects_wrong_code_length() {
        let mut node = LtncNode::new(8, 2);
        node.receive(&EncodedPacket::new(CodeVector::singleton(9, 0), Payload::zero(2)));
    }

    #[test]
    #[should_panic(expected = "payload size mismatch")]
    fn receive_rejects_wrong_payload_size() {
        let mut node = LtncNode::new(8, 2);
        node.receive(&EncodedPacket::new(CodeVector::singleton(8, 0), Payload::zero(3)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// End-to-end property: whatever the seed and code length, a sink fed
        /// by an LTNC source converges and recovers exactly the original
        /// content, and every packet on the wire satisfies the
        /// code-vector/payload consistency invariant.
        #[test]
        fn prop_dissemination_recovers_content(seed in any::<u64>(), k in 8usize..48) {
            let m = 2;
            let nat = natives(k, m);
            let mut source = LtncNode::with_all_natives(k, m, &nat, LtncConfig::default());
            let mut sink = LtncNode::new(k, m);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut sent = 0;
            while !sink.is_complete() && sent < 60 * k {
                let p = source.recode(&mut rng).unwrap();
                assert_consistent(&p, &nat);
                sink.receive(&p);
                sent += 1;
            }
            prop_assert!(sink.is_complete(), "sink did not converge within {} packets", 60 * k);
            prop_assert_eq!(sink.decode().unwrap(), nat);
        }

        /// Reception never corrupts decoded values, no matter the packet mix
        /// (including duplicates and already-redundant packets).
        #[test]
        fn prop_decoded_values_always_correct(
            seed in any::<u64>(),
            k in 4usize..24,
            send_duplicates in proptest::bool::ANY,
        ) {
            let m = 2;
            let nat = natives(k, m);
            let mut node = LtncNode::new(k, m);
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..8 * k {
                let degree = rng.gen_range(1..=3.min(k));
                let mut indices: Vec<usize> = Vec::new();
                while indices.len() < degree {
                    let x = rng.gen_range(0..k);
                    if !indices.contains(&x) {
                        indices.push(x);
                    }
                }
                let p = packet(k, &indices, &nat);
                node.receive(&p);
                if send_duplicates {
                    node.receive(&p);
                }
                for (i, expected) in nat.iter().enumerate() {
                    if let Some(v) = node.native(i) {
                        prop_assert_eq!(v, expected);
                    }
                }
            }
        }
    }
}
