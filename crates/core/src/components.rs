use std::collections::VecDeque;

use ltnc_lt::PacketId;

/// Label of the equivalence class of decoded native packets.
pub const DECODED_CLASS: usize = 0;

/// The connected components of native packets under the relation
/// "`x ⊕ x'` can be generated using only decoded natives and degree-2 encoded
/// packets" (second row of Table I, leader-based representation `cc` of the
/// paper).
///
/// * Initially `cc(x_i) = i + 1` (every native is alone in its component).
/// * When a native is decoded, its label becomes [`DECODED_CLASS`] (0).
/// * When a degree-2 packet `x ⊕ x'` is received — or a buffered packet drops
///   to degree 2 during belief propagation — the two components are merged.
///
/// Two natives are substitutable in the refinement step (Algorithm 2) exactly
/// when their labels are equal. On top of the labels, the tracker keeps the
/// member list of every component (to enumerate substitution candidates) and
/// the degree-2 packets forming the component (to materialise the payload of
/// `x ⊕ x'` by XOR-ing packets along a path between `x` and `x'`).
#[derive(Debug, Clone)]
pub struct ComponentTracker {
    /// `labels[x]` is the component label of native `x` (0 = decoded).
    labels: Vec<usize>,
    /// `members[l]` lists the natives currently labelled `l`.
    members: Vec<Vec<usize>>,
    /// Adjacency over natives: for each native, `(neighbour, degree-2 packet id)`.
    edges: Vec<Vec<(usize, PacketId)>>,
    /// Number of label rewrites performed (the paper's merge is a relabel; this
    /// is the control-plane work the cost model charges as index updates).
    relabel_ops: u64,
}

impl ComponentTracker {
    /// Creates the initial partition where every native is its own component.
    #[must_use]
    pub fn new(k: usize) -> Self {
        ComponentTracker {
            labels: (1..=k).collect(),
            members: {
                let mut m = vec![Vec::new(); k + 1];
                for (i, slot) in m.iter_mut().enumerate().skip(1) {
                    slot.push(i - 1);
                }
                m
            },
            edges: vec![Vec::new(); k],
            relabel_ops: 0,
        }
    }

    /// Code length `k`.
    #[must_use]
    pub fn code_length(&self) -> usize {
        self.labels.len()
    }

    /// The component label of native `x` (0 when decoded).
    ///
    /// # Panics
    ///
    /// Panics if `x >= k`.
    #[must_use]
    pub fn label_of(&self, x: usize) -> usize {
        self.labels[x]
    }

    /// A copy of the full label vector — this is what a receiver ships to the
    /// sender over the feedback channel (`cc_r` in Algorithm 4).
    #[must_use]
    pub fn labels(&self) -> Vec<usize> {
        self.labels.clone()
    }

    /// Returns `true` when `x` is in the decoded class.
    #[must_use]
    pub fn is_decoded(&self, x: usize) -> bool {
        self.labels[x] == DECODED_CLASS
    }

    /// Returns `true` when `x ⊕ x'` can be generated from decoded natives and
    /// degree-2 packets, i.e. the two natives are in the same component.
    #[must_use]
    pub fn same_component(&self, x: usize, y: usize) -> bool {
        self.labels[x] == self.labels[y]
    }

    /// The natives currently sharing `x`'s component (including `x` itself).
    #[must_use]
    pub fn members_of(&self, x: usize) -> &[usize] {
        &self.members[self.labels[x]]
    }

    /// The natives currently in the decoded class (label 0). These are the
    /// degree-1 packets available to the build step (`S[1]` in the paper).
    #[must_use]
    pub fn decoded_members(&self) -> &[usize] {
        &self.members[DECODED_CLASS]
    }

    /// Size of `x`'s component.
    #[must_use]
    pub fn component_size(&self, x: usize) -> usize {
        self.members_of(x).len()
    }

    /// Number of distinct non-empty components (the decoded class counts as
    /// one when non-empty).
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.members.iter().filter(|m| !m.is_empty()).count()
    }

    /// Cumulative number of label rewrites (control-plane cost).
    #[must_use]
    pub fn relabel_ops(&self) -> u64 {
        self.relabel_ops
    }

    /// Moves native `x` to the decoded class.
    ///
    /// # Panics
    ///
    /// Panics if `x >= k`.
    pub fn mark_decoded(&mut self, x: usize) {
        let old = self.labels[x];
        if old == DECODED_CLASS {
            return;
        }
        self.members[old].retain(|&m| m != x);
        self.labels[x] = DECODED_CLASS;
        self.members[DECODED_CLASS].push(x);
        self.relabel_ops += 1;
    }

    /// Records the degree-2 packet `x ⊕ y` (id `packet`) and merges the two
    /// components. Mirrors the update rule of Figure 5 in the paper: every
    /// native labelled like `y` is relabelled like `x` (we relabel the smaller
    /// component for efficiency — the resulting partition is identical).
    ///
    /// Returns `true` when the two natives were in different components (i.e.
    /// the packet actually connected something).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range or `x == y`.
    pub fn merge(&mut self, x: usize, y: usize, packet: PacketId) -> bool {
        assert_ne!(x, y, "a degree-2 packet has two distinct natives");
        self.edges[x].push((y, packet));
        self.edges[y].push((x, packet));

        let lx = self.labels[x];
        let ly = self.labels[y];
        if lx == ly {
            return false;
        }
        // Keep the decoded class label if present, otherwise relabel the
        // smaller component into the larger one.
        let (keep, drop) = if lx == DECODED_CLASS {
            (lx, ly)
        } else if ly == DECODED_CLASS {
            (ly, lx)
        } else if self.members[lx].len() >= self.members[ly].len() {
            (lx, ly)
        } else {
            (ly, lx)
        };
        let moved = std::mem::take(&mut self.members[drop]);
        self.relabel_ops += moved.len() as u64;
        for &m in &moved {
            self.labels[m] = keep;
        }
        self.members[keep].extend(moved);
        true
    }

    /// Finds a sequence of degree-2 packets whose XOR equals `x ⊕ y`
    /// (intermediate natives telescope away). Returns `None` when `x` and `y`
    /// are not connected by degree-2 packets — in particular when their
    /// relation only holds because both are decoded, which the caller handles
    /// by XOR-ing the two decoded payloads directly.
    ///
    /// `edge_alive` lets the caller skip packets that have since been consumed
    /// by belief propagation.
    #[must_use]
    pub fn path_between<F>(&self, x: usize, y: usize, edge_alive: F) -> Option<Vec<PacketId>>
    where
        F: Fn(PacketId) -> bool,
    {
        if x == y {
            return Some(Vec::new());
        }
        // BFS over the degree-2 edge graph.
        let k = self.labels.len();
        let mut prev: Vec<Option<(usize, PacketId)>> = vec![None; k];
        let mut visited = vec![false; k];
        visited[x] = true;
        let mut queue = VecDeque::from([x]);
        while let Some(cur) = queue.pop_front() {
            for &(next, packet) in &self.edges[cur] {
                if visited[next] || !edge_alive(packet) {
                    continue;
                }
                visited[next] = true;
                prev[next] = Some((cur, packet));
                if next == y {
                    // Reconstruct the path back to x.
                    let mut path = Vec::new();
                    let mut node = y;
                    while let Some((parent, pkt)) = prev[node] {
                        path.push(pkt);
                        node = parent;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltnc_gf2::{CodeVector, Payload};
    use ltnc_lt::TannerGraph;
    use proptest::prelude::*;

    fn pids(n: usize) -> Vec<PacketId> {
        let mut g = TannerGraph::new(n + 2);
        (0..n)
            .map(|i| g.insert(CodeVector::from_indices(n + 2, &[i, i + 1]), Payload::zero(1)))
            .collect()
    }

    #[test]
    fn initial_partition_is_singletons() {
        let cc = ComponentTracker::new(5);
        assert_eq!(cc.code_length(), 5);
        assert_eq!(cc.component_count(), 5);
        for x in 0..5 {
            assert_eq!(cc.label_of(x), x + 1);
            assert_eq!(cc.members_of(x), &[x]);
            assert!(!cc.is_decoded(x));
            assert_eq!(cc.component_size(x), 1);
        }
        assert!(!cc.same_component(0, 1));
        assert!(cc.same_component(2, 2));
    }

    #[test]
    fn mark_decoded_moves_to_class_zero() {
        let mut cc = ComponentTracker::new(4);
        cc.mark_decoded(2);
        assert!(cc.is_decoded(2));
        assert_eq!(cc.label_of(2), DECODED_CLASS);
        assert_eq!(cc.members_of(2), &[2]);
        cc.mark_decoded(0);
        assert!(cc.same_component(0, 2));
        assert_eq!(cc.component_size(0), 2);
        // Idempotent.
        cc.mark_decoded(0);
        assert_eq!(cc.component_size(0), 2);
    }

    #[test]
    fn merge_joins_components() {
        let ids = pids(3);
        let mut cc = ComponentTracker::new(5);
        assert!(cc.merge(0, 1, ids[0]));
        assert!(cc.same_component(0, 1));
        assert_eq!(cc.component_size(0), 2);
        assert!(cc.merge(1, 2, ids[1]));
        assert!(cc.same_component(0, 2));
        assert_eq!(cc.component_size(2), 3);
        // Merging within the same component is a no-op on the partition.
        assert!(!cc.merge(0, 2, ids[2]));
        assert_eq!(cc.component_size(0), 3);
        assert_eq!(cc.component_count(), 3); // {0,1,2}, {3}, {4}
    }

    #[test]
    fn paper_figure5_example() {
        // Figure 5: components {x1}, {x2,x4}, {x3,x5,x7}, {x6 decoded};
        // receiving x3 ⊕ x4 merges {x2,x4} and {x3,x5,x7}.
        // 0-based: x1..x7 -> 0..6.
        let ids = pids(6);
        let mut cc = ComponentTracker::new(7);
        cc.merge(1, 3, ids[0]); // x2 ⊕ x4
        cc.merge(2, 4, ids[1]); // x3 ⊕ x5
        cc.merge(4, 6, ids[2]); // x5 ⊕ x7
        cc.mark_decoded(5); // x6 decoded
        assert_eq!(cc.component_count(), 4);

        cc.merge(2, 3, ids[3]); // receive x3 ⊕ x4
        assert!(cc.same_component(1, 6)); // x2 ~ x7 now
        assert_eq!(cc.component_size(1), 5);
        assert_eq!(cc.component_count(), 3);
        assert!(!cc.same_component(0, 1));
        assert!(cc.is_decoded(5));
    }

    #[test]
    fn merge_with_decoded_class_keeps_label_zero() {
        let ids = pids(2);
        let mut cc = ComponentTracker::new(4);
        cc.mark_decoded(0);
        cc.merge(0, 1, ids[0]);
        assert_eq!(cc.label_of(1), DECODED_CLASS);
        cc.merge(2, 1, ids[1]);
        assert_eq!(cc.label_of(2), DECODED_CLASS);
    }

    #[test]
    #[should_panic(expected = "distinct natives")]
    fn merge_same_native_panics() {
        let ids = pids(1);
        let mut cc = ComponentTracker::new(4);
        cc.merge(1, 1, ids[0]);
    }

    #[test]
    fn path_between_follows_degree2_edges() {
        let ids = pids(3);
        let mut cc = ComponentTracker::new(5);
        cc.merge(0, 1, ids[0]);
        cc.merge(1, 2, ids[1]);
        cc.merge(2, 3, ids[2]);
        let path = cc.path_between(0, 3, |_| true).unwrap();
        assert_eq!(path, vec![ids[0], ids[1], ids[2]]);
        assert_eq!(cc.path_between(0, 0, |_| true).unwrap(), Vec::<PacketId>::new());
        assert!(cc.path_between(0, 4, |_| true).is_none());
    }

    #[test]
    fn path_between_respects_dead_edges() {
        let ids = pids(2);
        let mut cc = ComponentTracker::new(4);
        cc.merge(0, 1, ids[0]);
        cc.merge(1, 2, ids[1]);
        assert!(cc.path_between(0, 2, |_| true).is_some());
        assert!(cc.path_between(0, 2, |p| p != ids[0]).is_none());
    }

    #[test]
    fn path_prefers_any_valid_route() {
        // Two parallel routes between 0 and 2; killing one still finds the other.
        let ids = pids(4);
        let mut cc = ComponentTracker::new(4);
        cc.merge(0, 1, ids[0]);
        cc.merge(1, 2, ids[1]);
        cc.merge(0, 3, ids[2]);
        cc.merge(3, 2, ids[3]);
        let path = cc.path_between(0, 2, |p| p != ids[1]).unwrap();
        assert_eq!(path, vec![ids[2], ids[3]]);
    }

    #[test]
    fn relabel_ops_accumulate() {
        let ids = pids(2);
        let mut cc = ComponentTracker::new(4);
        assert_eq!(cc.relabel_ops(), 0);
        cc.merge(0, 1, ids[0]);
        let after_first = cc.relabel_ops();
        assert!(after_first >= 1);
        cc.mark_decoded(3);
        assert!(cc.relabel_ops() > after_first);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The label partition always matches reachability over the recorded
        /// degree-2 edges (plus the decoded class).
        #[test]
        fn prop_labels_match_edge_reachability(
            k in 3usize..16,
            ops in proptest::collection::vec((0usize..16, 0usize..16), 0..24),
        ) {
            let ids = pids(ops.len().max(1));
            let mut cc = ComponentTracker::new(k);
            for (i, &(a, b)) in ops.iter().enumerate() {
                let (a, b) = (a % k, b % k);
                if a != b {
                    cc.merge(a, b, ids[i]);
                }
            }
            for x in 0..k {
                for y in 0..k {
                    let connected = cc.path_between(x, y, |_| true).is_some();
                    prop_assert_eq!(
                        connected,
                        cc.same_component(x, y),
                        "x={} y={}", x, y
                    );
                }
            }
        }
    }
}
